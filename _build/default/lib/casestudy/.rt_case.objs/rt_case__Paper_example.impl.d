lib/casestudy/paper_example.ml: Rt_lattice Rt_task Rt_trace
