lib/casestudy/acc_model.mli: Rt_sim Rt_task Rt_trace
