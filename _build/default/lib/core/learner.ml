module Df = Rt_lattice.Depfun

type algorithm = Exact | Heuristic of int

type report = {
  algorithm : algorithm;
  hypotheses : Df.t list;
  lub : Df.t option;
  converged : bool;
  consistent : bool;
  elapsed_s : float;
  periods : int;
  messages : int;
}

let learn ?exact_limit algorithm trace =
  let t0 = Unix.gettimeofday () in
  let hypotheses =
    match algorithm with
    | Exact -> (Exact.run ?limit:exact_limit trace).Exact.hypotheses
    | Heuristic bound -> (Heuristic.run ~bound trace).Heuristic.hypotheses
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  {
    algorithm;
    hypotheses;
    lub = (match hypotheses with [] -> None | l -> Some (Df.lub l));
    converged = List.length hypotheses = 1;
    consistent = hypotheses <> [];
    elapsed_s;
    periods = Rt_trace.Trace.period_count trace;
    messages = Rt_trace.Trace.total_messages trace;
  }

let auto ?(initial = 1) ?(max_bound = 256) trace =
  if initial < 1 then invalid_arg "Learner.auto: initial bound must be >= 1";
  let rec go bound prev =
    let report = learn (Heuristic bound) trace in
    let stable =
      match prev, report.lub with
      | Some p, Some l -> Df.equal p l
      | None, None -> true  (* consistently inconsistent *)
      | _ -> false
    in
    if stable || bound >= max_bound then (report, bound)
    else go (bound * 2) report.lub
  in
  go initial None

let verify report trace =
  List.for_all (fun d -> Matching.matches_trace d trace) report.hypotheses

let pp_report ?names ppf r =
  let alg = match r.algorithm with
    | Exact -> "exact"
    | Heuristic b -> Printf.sprintf "heuristic(bound=%d)" b
  in
  Format.fprintf ppf "@[<v>algorithm: %s@,periods: %d, messages: %d@,"
    alg r.periods r.messages;
  Format.fprintf ppf "hypotheses: %d%s, %.3fs@,"
    (List.length r.hypotheses)
    (if r.converged then " (converged)"
     else if not r.consistent then " (INCONSISTENT TRACE)"
     else "")
    r.elapsed_s;
  (match r.lub with
   | Some d -> Format.fprintf ppf "least upper bound:@,%a@]" (Df.pp ?names) d
   | None -> Format.fprintf ppf "@]")
