lib/core/exact.mli: Hypothesis Rt_lattice Rt_trace
