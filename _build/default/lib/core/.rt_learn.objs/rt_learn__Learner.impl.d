lib/core/learner.ml: Exact Format Heuristic List Matching Printf Rt_lattice Rt_trace Unix
