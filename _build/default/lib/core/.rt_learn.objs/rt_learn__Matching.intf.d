lib/core/matching.mli: Rt_lattice Rt_trace
