lib/core/postprocess.mli: Hypothesis
