lib/core/hypothesis.ml: Array Int List Rt_lattice Stdlib
