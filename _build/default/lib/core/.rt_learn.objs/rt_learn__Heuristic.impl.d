lib/core/heuristic.ml: Array Hypothesis Int List Postprocess Rt_lattice Rt_trace Violations
