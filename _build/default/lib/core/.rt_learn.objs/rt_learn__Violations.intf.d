lib/core/violations.mli: Rt_trace
