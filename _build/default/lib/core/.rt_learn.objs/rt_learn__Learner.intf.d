lib/core/learner.mli: Format Rt_lattice Rt_trace
