lib/core/version_space.ml: Exact Heuristic List Matching Rt_lattice
