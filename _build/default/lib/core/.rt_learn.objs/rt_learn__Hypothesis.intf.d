lib/core/hypothesis.mli: Format Rt_lattice
