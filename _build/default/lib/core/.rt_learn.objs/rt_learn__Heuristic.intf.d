lib/core/heuristic.mli: Rt_lattice Rt_trace
