lib/core/version_space.mli: Rt_lattice Rt_trace
