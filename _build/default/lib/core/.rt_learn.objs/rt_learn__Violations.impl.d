lib/core/violations.ml: Array List Rt_trace
