lib/core/postprocess.ml: Array Hypothesis List
