lib/core/exact.ml: Array Hypothesis List Postprocess Rt_lattice Rt_trace Violations
