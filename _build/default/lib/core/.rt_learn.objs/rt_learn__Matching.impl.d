lib/core/matching.ml: Array Hashtbl List Rt_lattice Rt_trace
