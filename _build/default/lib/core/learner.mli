(** Facade over the two algorithms with a uniform report — the entry point
    a downstream user calls. *)

type algorithm =
  | Exact                  (** precise, worst-case exponential *)
  | Heuristic of int       (** bounded width (the paper's heuristics) *)

type report = {
  algorithm : algorithm;
  hypotheses : Rt_lattice.Depfun.t list;  (** the answer set [D*] *)
  lub : Rt_lattice.Depfun.t option;
  (** [⊔ D*] — the single conservative answer (what §3.3 reports as
      [dLUB]); [None] iff the answer set is empty. *)
  converged : bool;        (** exactly one hypothesis left *)
  consistent : bool;       (** answer set non-empty *)
  elapsed_s : float;       (** wall-clock learning time *)
  periods : int;
  messages : int;
}

val learn : ?exact_limit:int -> algorithm -> Rt_trace.Trace.t -> report

val auto : ?initial:int -> ?max_bound:int -> Rt_trace.Trace.t -> report * int
(** Pick the heuristic bound automatically: double it (starting at
    [initial], default 1) until the least upper bound of the answer set
    stops changing between consecutive runs, or [max_bound] (default
    256) is reached. Returns the final report and the bound used. A
    pragmatic answer to the open tuning knob the paper leaves to the
    user. *)

val verify : report -> Rt_trace.Trace.t -> bool
(** Theorem 2 as a runtime check: every returned hypothesis matches every
    period of the trace. *)

val pp_report : ?names:string array -> Format.formatter -> report -> unit
