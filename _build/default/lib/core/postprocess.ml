let dedup hs =
  let sorted = List.sort Hypothesis.compare_full hs in
  let rec uniq = function
    | a :: (b :: _ as rest) ->
      if Hypothesis.compare_full a b = 0 then uniq rest else a :: uniq rest
    | ([] | [ _ ]) as l -> l
  in
  uniq sorted

let minimal_only hs =
  let arr = Array.of_list hs in
  let n = Array.length arr in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    if keep.(i) then
      for j = 0 to n - 1 do
        if i <> j && keep.(i) && keep.(j) && Hypothesis.leq arr.(j) arr.(i)
           && not (Hypothesis.equal arr.(j) arr.(i))
        then keep.(i) <- false
      done
  done;
  List.filteri (fun i _ -> keep.(i)) (Array.to_list arr)
