(** The matching function [M : H × I → bool] (Definition 3), made
    concrete. A dependency function [d] matches a period [i] iff

    + {b message coverage} — there is an assignment of every message
      occurrence in [i] to a candidate (sender, receiver) pair (from
      [Rt_trace.Candidates]) such that no pair is used twice in the
      period, and for each assigned pair [(s,r)]:
      [→ ⊑ d(s,r)] and [← ⊑ d(r,s)]; and
    + {b execution closure} — for every ordered pair [(a,b)] with a
      definite value ([→], [←] or [↔]): if [a] executed in [i] then [b]
      executed in [i].

    Coverage requires search over assignments; [matches] uses
    backtracking (worst case exponential in the number of messages —
    Theorem 1 says we cannot do better in general). *)

val closure_ok : Rt_lattice.Depfun.t -> Rt_trace.Period.t -> bool
(** The execution-closure half of the check (cheap). *)

val explain :
  ?slack:int -> ?window:int -> Rt_lattice.Depfun.t -> Rt_trace.Period.t ->
  (int * int) array option
(** A witness assignment (one (sender, receiver) per message occurrence in
    rising-edge order) if the period matches, [None] otherwise. *)

val matches : ?slack:int -> ?window:int -> Rt_lattice.Depfun.t ->
  Rt_trace.Period.t -> bool

val matches_trace : ?slack:int -> ?window:int -> Rt_lattice.Depfun.t ->
  Rt_trace.Trace.t -> bool
(** [M(h, I)]: matches every period. *)

val count_assignments : ?slack:int -> ?window:int -> ?limit:int ->
  Rt_lattice.Depfun.t ->
  Rt_trace.Period.t -> int
(** Number of distinct witness assignments (capped at [limit], default
    [max_int]); exposes the search-space size for benchmarks. *)
