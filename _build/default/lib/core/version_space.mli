(** Negative-example extension (sketched in the paper's conclusion:
    "It could also be extended by version space techniques provided
    negative examples in the execution traces").

    A negative instance is a period that the system must {e not} be able
    to produce — e.g. a forbidden execution pattern observed on a faulty
    unit, or a safety scenario written by hand. A hypothesis is consistent
    iff it matches every positive period and no negative one.

    Because the matching function is not monotone along the lattice (the
    definite values constrain executions), negative instances cannot prune
    branches during generalization without losing completeness; they are
    applied as a final consistency filter, and [learn] reports both the
    surviving and the eliminated hypotheses. *)

type report = {
  accepted : Rt_lattice.Depfun.t list;
  (** hypotheses matching all positives and no negative *)
  rejected : Rt_lattice.Depfun.t list;
  (** hypotheses eliminated by a negative instance *)
}

val filter_consistent :
  negatives:Rt_trace.Period.t list -> Rt_lattice.Depfun.t list -> report

val learn :
  ?bound:int -> negatives:Rt_trace.Period.t list -> Rt_trace.Trace.t -> report
(** Run the learner on the positive trace ([Exact] when [bound] is absent,
    bounded heuristic otherwise), then filter with the negatives. *)
