module Dv = Rt_lattice.Depval
module Df = Rt_lattice.Depfun
module Period = Rt_trace.Period
module Candidates = Rt_trace.Candidates

let closure_ok d (p : Period.t) =
  let ok = ref true in
  Df.iter_pairs (fun a b v ->
      if !ok && Dv.is_definite v && p.executed.(a) && not p.executed.(b) then
        ok := false)
    d;
  !ok

(* Candidate pairs of message [m] that the hypothesis allows. *)
let allowed_pairs ?slack ?window d p m =
  List.filter (fun (s, r) -> Dv.leq Dv.Fwd (Df.get d s r) && Dv.leq Dv.Bwd (Df.get d r s))
    (Candidates.pairs ?slack ?window p m)

(* Depth-first search over per-message assignments with at-most-one use of
   each (sender, receiver) pair. [kont] receives each complete assignment
   (messages in rising-edge order) and returns [true] to stop early. *)
let search ?slack ?window d (p : Period.t) ~kont =
  let msgs = p.msgs in
  let k = Array.length msgs in
  let options = Array.map (fun m -> allowed_pairs ?slack ?window d p m) msgs in
  let used = Hashtbl.create 16 in
  let chosen = Array.make k (-1, -1) in
  let rec go i =
    if i = k then kont chosen
    else
      List.exists (fun (s, r) ->
          if Hashtbl.mem used (s, r) then false
          else begin
            Hashtbl.add used (s, r) ();
            chosen.(i) <- (s, r);
            let stop = go (i + 1) in
            Hashtbl.remove used (s, r);
            stop
          end)
        options.(i)
  in
  go 0

let explain ?slack ?window d p =
  if not (closure_ok d p) then None
  else begin
    let witness = ref None in
    let found =
      search ?slack ?window d p ~kont:(fun chosen ->
          witness := Some (Array.copy chosen);
          true)
    in
    if found then !witness else None
  end

let matches ?slack ?window d p = explain ?slack ?window d p <> None

let matches_trace ?slack ?window d t =
  List.for_all (fun p -> matches ?slack ?window d p) (Rt_trace.Trace.periods t)

let count_assignments ?slack ?window ?(limit = max_int) d p =
  if not (closure_ok d p) then 0
  else begin
    let count = ref 0 in
    ignore
      (search ?slack ?window d p ~kont:(fun _ ->
           incr count;
           !count >= limit));
    !count
  end
