module Df = Rt_lattice.Depfun
module Period = Rt_trace.Period
module Candidates = Rt_trace.Candidates

type stats = {
  periods_processed : int;
  max_set_size : int;
  created : int;
}

type outcome = {
  hypotheses : Df.t list;
  stats : stats;
}

exception Blowup of { period : int; set_size : int; limit : int }

exception Blowup_signal of int

(* Builds the next level; raises mid-construction when it exceeds [limit]
   so a combinatorial explosion cannot exhaust memory before the
   post-step size check would have caught it. *)
let step_message hs pairs ~created ~limit =
  let count = ref 0 in
  List.concat_map (fun h ->
      List.filter_map (fun (s, r) ->
          match Hypothesis.generalize_message h ~sender:s ~receiver:r with
          | Some h' ->
            incr created;
            incr count;
            if !count > limit then raise (Blowup_signal !count);
            Some h'
          | None -> None)
        pairs)
    hs

let end_of_period hs ~violated =
  List.iter (fun h ->
      Hypothesis.weaken_violations h ~violated;
      Hypothesis.clear_assumptions h)
    hs;
  Postprocess.minimal_only (Postprocess.dedup hs)

let run ?(limit = 200_000) ?window ?on_period trace =
  let n = Rt_trace.Trace.task_count trace in
  let violations = Violations.create n in
  let created = ref 1 in
  let max_set = ref 1 in
  let watch period hs =
    let k = List.length hs in
    if k > !max_set then max_set := k;
    if k > limit then raise (Blowup { period; set_size = k; limit })
  in
  let step_period hs (p : Period.t) =
    let hs =
      Array.fold_left (fun hs m ->
          let hs =
            match step_message hs (Candidates.pairs ?window p m) ~created ~limit with
            | hs -> hs
            | exception Blowup_signal set_size ->
              raise (Blowup { period = p.index; set_size; limit })
          in
          watch p.index hs;
          Postprocess.dedup hs)
        hs p.msgs
    in
    Violations.observe violations ~executed:p.executed;
    let hs = end_of_period hs ~violated:(Violations.matrix violations) in
    (match on_period with Some f -> f p.index hs | None -> ());
    hs
  in
  let final, periods =
    List.fold_left (fun (hs, k) p -> (step_period hs p, k + 1))
      ([ Hypothesis.bottom n ], 0)
      (Rt_trace.Trace.periods trace)
  in
  {
    hypotheses = List.map (fun h -> Df.copy (Hypothesis.depfun h)) final;
    stats = { periods_processed = periods; max_set_size = !max_set; created = !created };
  }

let converged o = match o.hypotheses with [ d ] -> Some d | [] | _ :: _ -> None
