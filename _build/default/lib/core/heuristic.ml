module Df = Rt_lattice.Depfun
module Period = Rt_trace.Period
module Candidates = Rt_trace.Candidates

type stats = {
  periods_processed : int;
  merges : int;
  created : int;
}

type outcome = {
  hypotheses : Df.t list;
  stats : stats;
}

type merge_policy = Lightest_pair | Heaviest_pair | First_last

(* The working set: a list sorted by ascending weight. All operations keep
   the invariant; sizes are bounded by [bound + 1] so linear scans are
   within the paper's O(m·b² + m·b·t²) budget. *)
module Wlist = struct
  (* Canonical total order: weight first, then the structural order, so
     the list contents never depend on insertion sequence and runs are
     reproducible. *)
  let before h h' =
    let c = Int.compare (Hypothesis.weight h) (Hypothesis.weight h') in
    if c <> 0 then c < 0 else Hypothesis.compare_full h h' < 0

  let insert h l =
    let rec go = function
      | [] -> [ h ]
      | h' :: rest as all -> if before h h' then h :: all else h' :: go rest
    in
    go l

  (* Cheap weight/hash pre-filters keep deduplication near O(b) integer
     compares; the full matrix comparison runs only on a true duplicate. *)
  let mem h l =
    let w = Hypothesis.weight h in
    List.exists (fun h' -> Hypothesis.weight h' = w && Hypothesis.compare_full h h' = 0) l

  (* Remove and return the two victims of the merge policy. *)
  let pick_pair policy l =
    match policy, l with
    | _, ([] | [ _ ]) -> invalid_arg "Heuristic: cannot merge fewer than 2"
    | Lightest_pair, a :: b :: rest -> (a, b, rest)
    | Heaviest_pair, l ->
      (match List.rev l with
       | a :: b :: rest -> (a, b, List.rev rest)
       | [] | [ _ ] -> assert false)
    | First_last, a :: rest ->
      (match List.rev rest with
       | z :: mid -> (a, z, List.rev mid)
       | [] -> assert false)
end

type state = {
  policy : merge_policy;
  window : int option;
  bound : int;
  violations : Violations.t;
  mutable hs : Hypothesis.t list;  (* ascending weight *)
  mutable created : int;
  mutable merges : int;
  mutable periods : int;
}

let init ?(policy = Lightest_pair) ?window ~bound ~ntasks () =
  if bound < 1 then invalid_arg "Heuristic.init: bound must be >= 1";
  if ntasks < 1 then invalid_arg "Heuristic.init: need at least one task";
  {
    policy;
    window;
    bound;
    violations = Violations.create ntasks;
    hs = [ Hypothesis.bottom ntasks ];
    created = 1;
    merges = 0;
    periods = 0;
  }

(* Insert with deduplication, then enforce the bound by merging. *)
let rec add st h l =
  if Wlist.mem h l then l
  else begin
    let l = Wlist.insert h l in
    if List.length l <= st.bound then l
    else begin
      let a, b, rest = Wlist.pick_pair st.policy l in
      st.merges <- st.merges + 1;
      add st (Hypothesis.merge_lub a b) rest
    end
  end

let step_message st hs pairs =
  List.fold_left (fun acc h ->
      List.fold_left (fun acc (s, r) ->
          match Hypothesis.generalize_message h ~sender:s ~receiver:r with
          | Some h' ->
            st.created <- st.created + 1;
            add st h' acc
          | None -> acc)
        acc pairs)
    [] hs

let feed st (p : Period.t) =
  let hs =
    Array.fold_left (fun hs m -> step_message st hs (Candidates.pairs ?window:st.window p m))
      st.hs p.msgs
  in
  Violations.observe st.violations ~executed:p.executed;
  let violated = Violations.matrix st.violations in
  List.iter (fun h ->
      Hypothesis.weaken_violations h ~violated;
      Hypothesis.clear_assumptions h)
    hs;
  (* Post-processing: unify equal hypotheses, drop non-minimal ones,
     restore the weight order (weakening changes weights). *)
  let survivors = Postprocess.minimal_only (Postprocess.dedup hs) in
  st.hs <- List.fold_left (fun acc h -> Wlist.insert h acc) [] survivors;
  st.periods <- st.periods + 1

let current st = List.map (fun h -> Df.copy (Hypothesis.depfun h)) st.hs

let stats st =
  { periods_processed = st.periods; merges = st.merges; created = st.created }

let snapshot st = { hypotheses = current st; stats = stats st }

let run ?policy ?window ~bound trace =
  let st = init ?policy ?window ~bound ~ntasks:(Rt_trace.Trace.task_count trace) () in
  List.iter (feed st) (Rt_trace.Trace.periods trace);
  snapshot st

let converged o = match o.hypotheses with [ d ] -> Some d | [] | _ :: _ -> None
