type report = {
  accepted : Rt_lattice.Depfun.t list;
  rejected : Rt_lattice.Depfun.t list;
}

let filter_consistent ~negatives hypotheses =
  let matches_a_negative d = List.exists (fun p -> Matching.matches d p) negatives in
  let rejected, accepted = List.partition matches_a_negative hypotheses in
  { accepted; rejected }

let learn ?bound ~negatives trace =
  let hypotheses =
    match bound with
    | None -> (Exact.run trace).Exact.hypotheses
    | Some b -> (Heuristic.run ~bound:b trace).Heuristic.hypotheses
  in
  filter_consistent ~negatives hypotheses
