(** Trace anonymization — the operation the paper's authors performed on
    the GM data ("For proprietary reasons, we cannot disclose actual
    names of tasks. We abstract these tasks using letters A to P and S").

    Renames tasks to neutral letters, renumbers bus identifiers densely,
    and optionally rebases every period's timestamps to start near zero.
    The learning problem is untouched: candidate sets depend only on
    event ordering and relative timing, which are preserved. *)

type mapping = {
  task_names : (string * string) list;  (** original -> anonymized *)
  bus_ids : (int * int) list;           (** original -> anonymized *)
}

val anonymize : ?rebase_time:bool -> Trace.t -> Trace.t * mapping
(** Tasks are renamed [A, B, ..., Z, T26, T27, ...] in index order; bus
    ids become [0x100, 0x101, ...] in first-appearance order. With
    [rebase_time] (default [true]) each period's events are shifted so
    the earliest event is at time 0. *)

val apply_names : mapping -> string -> string option
(** Look up the anonymized name of an original task. *)
