let senders ?(slack = 0) ?window (p : Period.t) (m : Period.msg) =
  let lo = match window with None -> min_int | Some w -> m.rise - w in
  List.filter (fun i ->
      p.executed.(i) && p.end_time.(i) <= m.rise + slack && p.end_time.(i) >= lo)
    (List.init (Rt_task.Task_set.size p.task_set) Fun.id)

let receivers ?(slack = 0) ?window (p : Period.t) (m : Period.msg) =
  let hi = match window with None -> max_int | Some w -> m.fall + w in
  List.filter (fun i ->
      p.executed.(i) && p.start_time.(i) + slack >= m.fall && p.start_time.(i) <= hi)
    (List.init (Rt_task.Task_set.size p.task_set) Fun.id)

let pairs ?slack ?window p m =
  let ss = senders ?slack ?window p m and rs = receivers ?slack ?window p m in
  List.concat_map (fun s ->
      List.filter_map (fun r -> if s = r then None else Some (s, r)) rs)
    ss

let pair_count ?slack ?window p =
  Array.fold_left (fun acc m -> acc + List.length (pairs ?slack ?window p m))
    0 p.Period.msgs
