type task_stats = {
  task : int;
  activations : int;
  activation_ratio : float;
  min_duration : int;
  max_duration : int;
  mean_duration : float;
  min_start : int;
  max_start : int;
}

type bus_stats = {
  frames : int;
  distinct_ids : int;
  busy_time : int;
  utilization : float;
  min_frame_time : int;
  max_frame_time : int;
}

type t = {
  periods : int;
  tasks : task_stats list;
  bus : bus_stats;
}

let of_trace trace =
  let n = Trace.task_count trace in
  let periods = Trace.periods trace in
  let nperiods = List.length periods in
  let acts = Array.make n 0 in
  let dur_sum = Array.make n 0 in
  let dur_min = Array.make n max_int and dur_max = Array.make n min_int in
  let start_min = Array.make n max_int and start_max = Array.make n min_int in
  let frames = ref 0 and busy = ref 0 in
  let ids = Hashtbl.create 16 in
  let ft_min = ref max_int and ft_max = ref min_int in
  let span_lo = ref max_int and span_hi = ref min_int in
  List.iter (fun (p : Period.t) ->
      for i = 0 to n - 1 do
        if p.executed.(i) then begin
          acts.(i) <- acts.(i) + 1;
          let d = p.end_time.(i) - p.start_time.(i) in
          dur_sum.(i) <- dur_sum.(i) + d;
          dur_min.(i) <- min dur_min.(i) d;
          dur_max.(i) <- max dur_max.(i) d;
          start_min.(i) <- min start_min.(i) p.start_time.(i);
          start_max.(i) <- max start_max.(i) p.start_time.(i)
        end
      done;
      Array.iter (fun (m : Period.msg) ->
          incr frames;
          Hashtbl.replace ids m.bus_id ();
          let ft = m.fall - m.rise in
          busy := !busy + ft;
          ft_min := min !ft_min ft;
          ft_max := max !ft_max ft)
        p.msgs;
      List.iter (fun (e : Event.t) ->
          span_lo := min !span_lo e.time;
          span_hi := max !span_hi e.time)
        p.events)
    periods;
  let tasks =
    List.filter_map (fun i ->
        if acts.(i) = 0 then None
        else
          Some
            {
              task = i;
              activations = acts.(i);
              activation_ratio = Float.of_int acts.(i) /. Float.of_int (max 1 nperiods);
              min_duration = dur_min.(i);
              max_duration = dur_max.(i);
              mean_duration = Float.of_int dur_sum.(i) /. Float.of_int acts.(i);
              min_start = start_min.(i);
              max_start = start_max.(i);
            })
      (List.init n Fun.id)
  in
  let span = if !span_hi > !span_lo then !span_hi - !span_lo else 1 in
  {
    periods = nperiods;
    tasks;
    bus =
      {
        frames = !frames;
        distinct_ids = Hashtbl.length ids;
        busy_time = !busy;
        utilization = Float.of_int !busy /. Float.of_int span;
        min_frame_time = (if !frames = 0 then 0 else !ft_min);
        max_frame_time = (if !frames = 0 then 0 else !ft_max);
      };
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>%d periods@," t.periods;
  Format.fprintf ppf "%-6s %6s %6s %8s %8s %8s@," "task" "acts" "ratio"
    "dur:min" "mean" "max";
  List.iter (fun s ->
      Format.fprintf ppf "t%-5d %6d %5.0f%% %8d %8.0f %8d@," (s.task + 1)
        s.activations
        (100.0 *. s.activation_ratio)
        s.min_duration s.mean_duration s.max_duration)
    t.tasks;
  Format.fprintf ppf
    "bus: %d frames, %d ids, busy %dus, utilization %.1f%%, frame %d..%dus@]"
    t.bus.frames t.bus.distinct_ids t.bus.busy_time
    (100.0 *. t.bus.utilization) t.bus.min_frame_time t.bus.max_frame_time

let to_string trace = Format.asprintf "%a" pp (of_trace trace)
