type kind =
  | Task_start of int
  | Task_end of int
  | Msg_rise of int
  | Msg_fall of int

type t = { time : int; kind : kind }

(* At equal timestamps, order events causally: a task end may enable a
   frame; a falling edge may enable both the next frame's rising edge
   (back-to-back bus transmissions) and a task start. *)
let kind_rank = function
  | Task_end _ -> 0
  | Msg_fall _ -> 1
  | Msg_rise _ -> 2
  | Task_start _ -> 3

let kind_key = function
  | Task_start i | Task_end i | Msg_rise i | Msg_fall i -> i

let compare a b =
  let c = Int.compare a.time b.time in
  if c <> 0 then c
  else
    let c = Int.compare (kind_rank a.kind) (kind_rank b.kind) in
    if c <> 0 then c else Int.compare (kind_key a.kind) (kind_key b.kind)

let task e =
  match e.kind with
  | Task_start i | Task_end i -> Some i
  | Msg_rise _ | Msg_fall _ -> None

let msg_id e =
  match e.kind with
  | Msg_rise i | Msg_fall i -> Some i
  | Task_start _ | Task_end _ -> None

let to_string ts e =
  match e.kind with
  | Task_start i -> Printf.sprintf "%8d start %s" e.time (Rt_task.Task_set.name ts i)
  | Task_end i -> Printf.sprintf "%8d end   %s" e.time (Rt_task.Task_set.name ts i)
  | Msg_rise m -> Printf.sprintf "%8d rise  0x%x" e.time m
  | Msg_fall m -> Printf.sprintf "%8d fall  0x%x" e.time m

let pp ts ppf e = Format.pp_print_string ppf (to_string ts e)
