(* VCD identifier codes: printable ASCII starting at '!'. *)
let code k =
  let base = Char.code '!' in
  let span = 94 in
  if k < span then String.make 1 (Char.chr (base + k))
  else
    String.make 1 (Char.chr (base + (k / span)))
    ^ String.make 1 (Char.chr (base + (k mod span)))

let default_period_len t =
  let tmax =
    List.fold_left (fun acc (p : Period.t) ->
        List.fold_left (fun acc (e : Event.t) -> max acc e.time) acc p.events)
      0 (Trace.periods t)
  in
  let rec pow10 x = if x > tmax then x else pow10 (x * 10) in
  pow10 10

let to_string ?period_len (t : Trace.t) =
  let period_len =
    match period_len with Some l -> l | None -> default_period_len t
  in
  let names = Rt_task.Task_set.names t.task_set in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$timescale 1us $end\n";
  Buffer.add_string buf "$scope module trace $end\n";
  Array.iteri (fun i name ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s task_%s $end\n" (code i) name))
    names;
  (* Collect the distinct bus ids in first-seen order. *)
  let ids = ref [] in
  List.iter (fun (p : Period.t) ->
      Array.iter (fun (m : Period.msg) ->
          if not (List.mem m.bus_id !ids) then ids := m.bus_id :: !ids)
        p.msgs)
    (Trace.periods t);
  let ids = List.rev !ids in
  let ntasks = Array.length names in
  List.iteri (fun k id ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s can_0x%x $end\n" (code (ntasks + k)) id))
    ids;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  Buffer.add_string buf "$dumpvars\n";
  Array.iteri (fun i _ -> Buffer.add_string buf (Printf.sprintf "0%s\n" (code i)))
    names;
  List.iteri (fun k _ ->
      Buffer.add_string buf (Printf.sprintf "0%s\n" (code (ntasks + k))))
    ids;
  Buffer.add_string buf "$end\n";
  let id_code bus_id =
    let rec find k = function
      | [] -> invalid_arg "Vcd: unknown bus id"
      | x :: rest -> if x = bus_id then code (ntasks + k) else find (k + 1) rest
    in
    find 0 ids
  in
  (* Emit changes grouped by timestamp across the whole trace. *)
  let changes =
    List.concat_map (fun (p : Period.t) ->
        let base = p.index * period_len in
        List.map (fun (e : Event.t) ->
            match e.kind with
            | Event.Task_start i -> (base + e.time, '1', code i)
            | Event.Task_end i -> (base + e.time, '0', code i)
            | Event.Msg_rise m -> (base + e.time, '1', id_code m)
            | Event.Msg_fall m -> (base + e.time, '0', id_code m))
          p.events)
      (Trace.periods t)
  in
  let changes = List.stable_sort (fun (t1, _, _) (t2, _, _) -> Int.compare t1 t2) changes in
  let last_time = ref (-1) in
  List.iter (fun (time, bit, c) ->
      if time <> !last_time then begin
        Buffer.add_string buf (Printf.sprintf "#%d\n" time);
        last_time := time
      end;
      Buffer.add_char buf bit;
      Buffer.add_string buf c;
      Buffer.add_char buf '\n')
    changes;
  Buffer.contents buf

let save ?period_len path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string ?period_len t))
