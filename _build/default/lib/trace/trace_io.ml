let header = "# rtgen-trace v1"

let to_string (t : Trace.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "tasks";
  Array.iter (fun n ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf n)
    (Rt_task.Task_set.names t.task_set);
  Buffer.add_char buf '\n';
  List.iter (fun (p : Period.t) ->
      Buffer.add_string buf (Printf.sprintf "period %d\n" p.index);
      List.iter (fun (e : Event.t) ->
          let line =
            match e.kind with
            | Event.Task_start i ->
              Printf.sprintf "%d start %s" e.time (Rt_task.Task_set.name t.task_set i)
            | Event.Task_end i ->
              Printf.sprintf "%d end %s" e.time (Rt_task.Task_set.name t.task_set i)
            | Event.Msg_rise m -> Printf.sprintf "%d rise 0x%x" e.time m
            | Event.Msg_fall m -> Printf.sprintf "%d fall 0x%x" e.time m
          in
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        p.events)
    (Trace.periods t);
  Buffer.contents buf

let output oc t = Stdlib.output_string oc (to_string t)

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc t)

type parse_error = { line : int; message : string }

let of_string s =
  let lines = String.split_on_char '\n' s in
  let exception Fail of parse_error in
  let fail line message = raise (Fail { line; message }) in
  let task_set = ref None in
  let periods = ref [] in
  let cur_index = ref None and cur_events = ref [] in
  let flush_period lineno =
    match !cur_index with
    | None -> ()
    | Some index ->
      let ts = match !task_set with
        | Some ts -> ts
        | None -> fail lineno "period before tasks line"
      in
      (match Period.make ~index ~task_set:ts (List.rev !cur_events) with
       | Ok p -> periods := p :: !periods
       | Error e ->
         fail lineno (Printf.sprintf "invalid period %d: %s" index
                        (Period.string_of_error e)));
      cur_index := None;
      cur_events := []
  in
  let parse_msg_id lineno tok =
    match int_of_string_opt tok with
    | Some m -> m
    | None -> fail lineno ("bad message id: " ^ tok)
  in
  let parse_task lineno tok =
    match !task_set with
    | None -> fail lineno "event before tasks line"
    | Some ts ->
      (match Rt_task.Task_set.index ts tok with
       | Some i -> i
       | None -> fail lineno ("unknown task: " ^ tok))
  in
  try
    List.iteri (fun i raw ->
        let lineno = i + 1 in
        let line = String.trim raw in
        if line = "" || String.length line > 0 && line.[0] = '#' then ()
        else
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | "tasks" :: names ->
            if !task_set <> None then fail lineno "duplicate tasks line";
            if names = [] then fail lineno "tasks line without names";
            (match Rt_task.Task_set.of_names (Array.of_list names) with
             | ts -> task_set := Some ts
             | exception Invalid_argument m -> fail lineno m)
          | [ "period"; idx ] ->
            flush_period lineno;
            (match int_of_string_opt idx with
             | Some n -> cur_index := Some n
             | None -> fail lineno ("bad period index: " ^ idx))
          | [ time; verb; arg ] ->
            if !cur_index = None then fail lineno "event before a period line";
            let time = match int_of_string_opt time with
              | Some t when t >= 0 -> t
              | Some _ -> fail lineno "negative timestamp"
              | None -> fail lineno ("bad timestamp: " ^ time)
            in
            let kind =
              match verb with
              | "start" -> Event.Task_start (parse_task lineno arg)
              | "end" -> Event.Task_end (parse_task lineno arg)
              | "rise" -> Event.Msg_rise (parse_msg_id lineno arg)
              | "fall" -> Event.Msg_fall (parse_msg_id lineno arg)
              | _ -> fail lineno ("unknown event kind: " ^ verb)
            in
            cur_events := { Event.time; kind } :: !cur_events
          | _ -> fail lineno ("unparseable line: " ^ line))
      lines;
    flush_period (List.length lines);
    (match !task_set with
     | None -> fail (List.length lines) "missing tasks line"
     | Some ts -> Ok (Trace.of_periods ~task_set:ts (List.rev !periods)))
  with Fail e -> Error e

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error e ->
    invalid_arg (Printf.sprintf "Trace_io.of_string_exn: line %d: %s" e.line e.message)

let load path =
  let ic = open_in path in
  let content =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  of_string content
