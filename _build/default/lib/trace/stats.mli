(** Descriptive statistics over a trace — the first thing an integrator
    looks at before learning: which tasks actually run, how loaded the
    bus is, how stable the timing looks. *)

type task_stats = {
  task : int;
  activations : int;        (** periods in which the task executed *)
  activation_ratio : float; (** activations / periods *)
  min_duration : int;       (** observed start-to-end span, microseconds *)
  max_duration : int;
  mean_duration : float;
  min_start : int;          (** earliest observed start offset *)
  max_start : int;
}

type bus_stats = {
  frames : int;
  distinct_ids : int;
  busy_time : int;             (** sum of rise-to-fall spans *)
  utilization : float;         (** busy time / observed span *)
  min_frame_time : int;
  max_frame_time : int;
}

type t = {
  periods : int;
  tasks : task_stats list;     (** only tasks that executed at least once *)
  bus : bus_stats;
}

val of_trace : Trace.t -> t

val pp : Format.formatter -> t -> unit
(** Tabular report. *)

val to_string : Trace.t -> string
