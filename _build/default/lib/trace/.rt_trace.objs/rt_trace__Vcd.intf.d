lib/trace/vcd.mli: Trace
