lib/trace/anonymize.mli: Trace
