lib/trace/trace_io.ml: Array Buffer Event Fun List Period Printf Rt_task Stdlib String Trace
