lib/trace/period.ml: Array Event Format Fun Hashtbl Int List Printf Rt_task String
