lib/trace/candidates.mli: Period
