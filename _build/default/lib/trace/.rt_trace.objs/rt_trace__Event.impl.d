lib/trace/event.ml: Format Int Printf Rt_task
