lib/trace/vcd.ml: Array Buffer Char Event Fun Int List Period Printf Rt_task String Trace
