lib/trace/candidates.ml: Array Fun List Period Rt_task
