lib/trace/trace.mli: Event Format Period Rt_task
