lib/trace/gantt.mli: Period
