lib/trace/gantt.ml: Array Buffer Event Fun List Period Printf Rt_task
