lib/trace/period.mli: Event Format Rt_task
