lib/trace/trace.ml: Array Event Format Hashtbl Int List Option Period Rt_task
