lib/trace/event.mli: Format Rt_task
