lib/trace/anonymize.ml: Array Char Event Hashtbl List Period Printf Rt_task String Trace
