lib/trace/stats.ml: Array Event Float Format Fun Hashtbl List Period Trace
