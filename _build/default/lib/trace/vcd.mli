(** Value Change Dump (IEEE 1364) export: view a trace as waveforms in
    GTKWave or any EDA waveform viewer. One 1-bit signal per task (high
    while executing) and one per bus identifier (high while a frame with
    that identifier is on the wire). Timescale: 1 us.

    Period events carry period-relative timestamps; the waveform lays
    periods out end to end every [period_len] microseconds. The default
    is the smallest power of ten that fits the largest event time. *)

val to_string : ?period_len:int -> Trace.t -> string

val save : ?period_len:int -> string -> Trace.t -> unit
(** Write to a file path. *)
