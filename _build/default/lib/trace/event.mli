(** Timestamped trace events (paper §2.1): the start or end of a task, or
    the rising / falling edge of a message frame on the bus. Timestamps are
    integer microseconds from the start of the recording. Message events
    carry the bus identifier of the frame; the learner never uses it to
    identify senders or receivers — only to pair a rising edge with its
    falling edge within a period. *)

type kind =
  | Task_start of int  (** task index *)
  | Task_end of int
  | Msg_rise of int    (** bus (CAN) identifier *)
  | Msg_fall of int

type t = { time : int; kind : kind }

val compare : t -> t -> int
(** By time, then by a stable kind order (ends, then falls, then rises,
    before starts at equal times, which matches causality: a sender's end,
    the frame, then the receiver's start). *)

val task : t -> int option
(** The task index for task events, [None] for message events. *)

val msg_id : t -> int option

val to_string : Rt_task.Task_set.t -> t -> string

val pp : Rt_task.Task_set.t -> Format.formatter -> t -> unit
