(** Textual trace format, the stand-in for the GM logging device's dump.

    {v
    # rtgen-trace v1
    tasks t1 t2 t3 t4
    period 0
    100 start t1
    250 end t1
    260 rise 0x101
    300 fall 0x101
    period 1
    ...
    v}

    Task events name the task; message events give the bus id in hex.
    Timestamps are microseconds relative to the period start. *)

val to_string : Trace.t -> string

val output : out_channel -> Trace.t -> unit

val save : string -> Trace.t -> unit
(** Write to a file path. *)

type parse_error = { line : int; message : string }

val of_string : string -> (Trace.t, parse_error) result

val of_string_exn : string -> Trace.t
(** @raise Invalid_argument with position information. *)

val load : string -> (Trace.t, parse_error) result
(** Read from a file path. *)
