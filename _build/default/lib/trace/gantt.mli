(** SVG Gantt chart of one period: a row per task with its execution
    span (hatched while preempted time is not distinguished — the span
    runs from start to end), plus a bus row with one bar per frame.
    Self-contained SVG, no external CSS. *)

val to_svg : ?width:int -> Period.t -> string
(** [width] is the drawing width in pixels (default 800); time is scaled
    to fit. Only tasks that executed get a row. *)

val save : ?width:int -> string -> Period.t -> unit
