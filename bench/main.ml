(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DATE'07, §3.3-3.4) plus the ablations called out in
   DESIGN.md. Absolute times differ from the 2007 Pentium M; the shapes
   are what EXPERIMENTS.md records.

   Run with: dune exec bench/main.exe
   Set RTGEN_BENCH_FAST=1 to skip the slowest sweep entries.
   Set RTGEN_BENCH_JOBS=N (or pass --jobs N) to run the Table 1 bound
   sweep on a pool of N domains.
   Pass --json [PATH] (or set RTGEN_BENCH_JSON=1 / a path) to also write
   the Table 1 measurements to BENCH_heuristic.json / PATH. *)

module Table = Rt_util.Table
module Df = Rt_lattice.Depfun
module Gm = Rt_case.Gm_model

let fast_mode =
  match Sys.getenv_opt "RTGEN_BENCH_FAST" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let argv_value flag =
  let n = Array.length Sys.argv in
  let rec go i =
    if i >= n then None
    else if Sys.argv.(i) = flag && i + 1 < n then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let jobs =
  let of_string s = try max 1 (int_of_string (String.trim s)) with _ -> 1 in
  match argv_value "--jobs" with
  | Some s -> of_string s
  | None ->
    (match Sys.getenv_opt "RTGEN_BENCH_JOBS" with
     | Some s -> of_string s
     | None -> 1)

let json_path =
  let from_env =
    match Sys.getenv_opt "RTGEN_BENCH_JSON" with
    | Some ("" | "0" | "false" | "no") | None -> None
    | Some ("1" | "true" | "yes") -> Some "BENCH_heuristic.json"
    | Some path -> Some path
  in
  if Array.exists (fun a -> a = "--json") Sys.argv then
    (* An operand after [--json] (anything not starting with '-')
       overrides the default file name. *)
    match argv_value "--json" with
    | Some p when String.length p > 0 && p.[0] <> '-' -> Some p
    | Some _ | None -> Some (Option.value from_env ~default:"BENCH_heuristic.json")
  else from_env

let wall f =
  let t0 = Rt_obs.Registry.now_ns () in
  let r = f () in
  (r, float_of_int (Rt_obs.Registry.now_ns () - t0) /. 1e9)

let section title =
  Printf.printf "\n==== %s ====\n%!" title

(* --- bechamel helpers: one Test.make per benched operation --- *)

let bechamel_estimates ~quota tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"bench" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun name v acc ->
      match Analyze.OLS.estimates v with
      | Some [ ns ] -> (name, ns) :: acc
      | Some _ | None -> (name, Float.nan) :: acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let print_bechamel ~quota tests =
  let rows =
    List.map (fun (name, ns) -> [ name; pp_ns ns ])
      (bechamel_estimates ~quota tests)
  in
  print_string (Table.render ~header:[ "benchmark"; "time/run" ] rows)

(* ------------------------------------------------------------------ *)
(* Table 1: heuristic runtime vs bound on the 18-task / 27-period /
   ~330-message reference trace.                                       *)
(* ------------------------------------------------------------------ *)

let paper_table1 =
  [ (1, 0.220); (4, 0.471); (16, 1.202); (32, 2.573); (64, 5.899);
    (100, 12.608); (120, 16.294); (150, 19.048) ]

(* One Table 1 measurement: the production workset learner head-to-head
   against the preserved seed implementation ({!Rt_learn.Reference}) on
   the same bound. Also the payload of BENCH_heuristic.json. *)
type table1_row = {
  bound : int;
  workset_s : float;   (** wall time, new array-backed working set *)
  legacy_s : float;    (** wall time, seed sorted-list working set *)
  merges : int;
  survivors : int;
}

(* The smallest bound at which the O(log b) workset beats the seed's O(b)
   sorted list. Below it the asymmetry is expected, not a regression: the
   array working set pays fixed per-insertion overhead (heap bookkeeping,
   canonical-order maintenance) that only amortizes once b is large
   enough for the seed's linear scans to dominate. *)
let crossover_bound rows =
  List.find_map
    (fun r -> if r.workset_s < r.legacy_s then Some r.bound else None)
    (List.sort (fun a b -> Int.compare a.bound b.bound) rows)

let bench_table1 trace =
  section "Table 1: heuristic runtime vs bound (paper's only table)";
  Printf.printf "workload: %s\n"
    (Format.asprintf "%a" Rt_trace.Trace.pp_summary trace);
  if jobs > 1 then
    Printf.printf "bound sweep on %d domains (RTGEN_BENCH_JOBS)\n" jobs;
  let bounds = if fast_mode then [ 1; 4; 16; 32 ] else List.map fst paper_table1 in
  let measure bound =
    let o, dt = wall (fun () -> Rt_learn.Heuristic.run ~bound trace) in
    let ol, dtl = wall (fun () -> Rt_learn.Reference.run ~bound trace) in
    assert (List.for_all2 Df.equal o.Rt_learn.Heuristic.hypotheses
              ol.Rt_learn.Heuristic.hypotheses);
    { bound; workset_s = dt; legacy_s = dtl;
      merges = o.Rt_learn.Heuristic.stats.merges;
      survivors = List.length o.Rt_learn.Heuristic.hypotheses }
  in
  let data =
    (* Whole runs are independent, so the sweep parallelizes at the
       per-bound grain; per-bound wall times are still measured inside
       the worker. *)
    if jobs > 1 then begin
      let pool = Rt_util.Domain_pool.create ~jobs in
      Fun.protect ~finally:(fun () -> Rt_util.Domain_pool.shutdown pool)
        (fun () -> Rt_util.Domain_pool.map_list pool measure bounds)
    end
    else List.map measure bounds
  in
  let rows =
    List.map (fun r ->
        let paper =
          match List.assoc_opt r.bound paper_table1 with
          | Some s -> Printf.sprintf "%.3f" s
          | None -> "-"
        in
        [ string_of_int r.bound; Printf.sprintf "%.3f" r.workset_s;
          Printf.sprintf "%.3f" r.legacy_s;
          Printf.sprintf "%.2fx" (r.legacy_s /. Float.max r.workset_s 1e-9);
          paper; string_of_int r.merges; string_of_int r.survivors ])
      data
  in
  print_string
    (Table.render
       ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right;
                 Table.Right; Table.Right; Table.Right ]
       ~header:[ "bound"; "workset (s)"; "seed list (s)"; "speedup";
                 "paper 2007 (s)"; "merges"; "|D*|" ]
       rows);
  print_endline
    "head-to-head: both columns share the byte-matrix kernels; the speedup\n\
     column isolates the working-set data structure (O(log b) array vs the\n\
     seed's O(b) sorted list). Results are asserted identical.";
  (match crossover_bound data with
   | Some b ->
     Printf.printf
       "crossover: workset wins from bound %d up; below it the seed list's\n\
        lower constant factors win (expected, see EXPERIMENTS.md).\n" b
   | None ->
     print_endline
       "crossover: the workset never beat the seed list in this sweep.");
  print_endline "shape check: runtime grows monotonically and low-polynomially in the bound.";
  (* The bechamel-sampled variant for the fast bounds. *)
  let open Bechamel in
  print_bechamel ~quota:0.5
    (List.map (fun bound ->
         Test.make
           ~name:(Printf.sprintf "table1/bound=%d" bound)
           (Staged.stage (fun () ->
                ignore (Rt_learn.Heuristic.run ~bound trace))))
       [ 1; 4 ]);
  data

(* ------------------------------------------------------------------ *)
(* Sharded head-to-head: the K-shard fold (DESIGN.md §14) against the
   monolithic heuristic run on the same bound.                          *)
(* ------------------------------------------------------------------ *)

type sharded_row = { k : int; sharded_s : float }

type sharded_data = {
  sh_bound : int;
  sh_jobs : int;
  monolithic_s : float;  (** wall time, single-engine heuristic run *)
  runs : sharded_row list;
}

let bench_sharded trace =
  section "Sharded learning: K-shard fold vs monolithic run (DESIGN.md sec. 14)";
  let bound = if fast_mode then 16 else 150 in
  (* The fold is exact at bound 1 for every K (the companion design of
     lib/shard); every sharded run is asserted byte-equal to it. *)
  let oracle =
    match (Rt_learn.Heuristic.run ~bound:1 trace).Rt_learn.Heuristic.hypotheses with
    | [ d ] -> d
    | _ -> failwith "sharded bench: reference trace must be consistent"
  in
  let _, mono_s = wall (fun () -> Rt_learn.Heuristic.run ~bound trace) in
  let pool =
    if jobs > 1 then Some (Rt_util.Domain_pool.create ~jobs) else None
  in
  let runs =
    Fun.protect
      ~finally:(fun () -> Option.iter Rt_util.Domain_pool.shutdown pool)
      (fun () ->
         List.map
           (fun k ->
              let o, dt =
                wall (fun () ->
                    Rt_shard.Shard.learn ?pool ~bound ~shards:k trace)
              in
              (match o.Rt_shard.Shard.model with
               | Some m when Df.equal m oracle -> ()
               | Some _ | None ->
                 failwith "sharded bench: fold differs from monolithic d*(1)");
              { k; sharded_s = dt })
           [ 1; 2; 4; 8 ])
  in
  print_string
    (Table.render
       ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
       ~header:[ "shards"; "sharded (s)"; "monolithic (s)"; "speedup" ]
       (List.map
          (fun r ->
             [ string_of_int r.k; Printf.sprintf "%.3f" r.sharded_s;
               Printf.sprintf "%.3f" mono_s;
               Printf.sprintf "%.2fx" (mono_s /. Float.max r.sharded_s 1e-9) ])
          runs));
  Printf.printf
    "bound %d, %d worker domain(s); every fold asserted byte-equal to the\n\
     monolithic bound-1 model. Each shard also runs a bound-1 companion, so\n\
     at jobs=1 the sweep measures pure fan-out overhead — wall-clock wins\n\
     need RTGEN_BENCH_JOBS >= 2 (see EXPERIMENTS.md).\n"
    bound jobs;
  { sh_bound = bound; sh_jobs = jobs; monolithic_s = mono_s; runs }

(* ------------------------------------------------------------------ *)
(* Observability: flight-recorder overhead on the engine's feed path.
   The recorder is designed to be near-free — one option branch when
   detached, four array writes plus the caller's detail string when
   attached — and this probe pins that: a bound-64 learn through
   Rt_engine.Engine with and without a recorder scope, back to back on
   the same host. check_bench.py gates the on/off quotient.            *)
(* ------------------------------------------------------------------ *)

type recorder_data = {
  rec_bound : int;
  rec_off_s : float;   (** engine feed, no recorder attached *)
  rec_on_s : float;    (** same feed with a flight scope attached *)
  rec_events : int;    (** events the attached recorder captured *)
}

let bench_recorder trace =
  section "Observability: flight-recorder overhead (engine feed, on vs off)";
  let bound = if fast_mode then 16 else 64 in
  let periods = Rt_trace.Trace.periods trace in
  let feed ?flight () =
    let eng =
      Rt_engine.Engine.create ?flight
        ~ntasks:(Rt_trace.Trace.task_count trace)
        (Rt_engine.Engine.Heuristic { bound })
    in
    List.iter (Rt_engine.Engine.feed eng) periods;
    Rt_engine.Engine.finalize eng
  in
  let off, off_s = wall (fun () -> feed ()) in
  let ring = Rt_obs.Flight.create ~capacity:4096 () in
  let scope = Rt_obs.Flight.scope ring "bench" in
  let on_, on_s = wall (fun () -> feed ~flight:scope ()) in
  (* Recording must be observation only. *)
  assert (List.for_all2 Df.equal off.Rt_engine.Engine.hypotheses
            on_.Rt_engine.Engine.hypotheses);
  let events = Rt_obs.Flight.recorded ring in
  assert (events = List.length periods);
  print_string
    (Table.render
       ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
       ~header:[ "bound"; "recorder off (s)"; "recorder on (s)"; "overhead" ]
       [ [ string_of_int bound; Printf.sprintf "%.3f" off_s;
           Printf.sprintf "%.3f" on_s;
           Printf.sprintf "%.3fx" (on_s /. Float.max off_s 1e-9) ] ]);
  Printf.printf
    "%d engine.period events captured; hypotheses asserted identical with\n\
     and without the recorder.\n"
    events;
  { rec_bound = bound; rec_off_s = off_s; rec_on_s = on_s;
    rec_events = events }

(* BENCH_heuristic.json: the Table 1 per-bound wall times, machine
   readable for tracking runs over time. Written by hand — the bench
   payload is flat and predates Rt_obs.Json. *)
let emit_json path trace rows sharded recorder =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"benchmark\": \"heuristic-table1\",\n";
  out "  \"workload\": %S,\n"
    (Format.asprintf "%a" Rt_trace.Trace.pp_summary trace);
  out "  \"jobs\": %d,\n" jobs;
  out "  \"fast_mode\": %b,\n" fast_mode;
  out "  \"crossover_bound\": %s,\n"
    (match crossover_bound rows with
     | Some b -> string_of_int b
     | None -> "null");
  out
    "  \"sharded\": { \"bound\": %d, \"jobs\": %d, \
     \"monolithic_seconds\": %.6f, \"runs\": [ %s ] },\n"
    sharded.sh_bound sharded.sh_jobs sharded.monolithic_s
    (String.concat ", "
       (List.map
          (fun r ->
             Printf.sprintf "{ \"shards\": %d, \"seconds\": %.6f }"
               r.k r.sharded_s)
          sharded.runs));
  out
    "  \"recorder\": { \"bound\": %d, \"off_seconds\": %.6f, \
     \"on_seconds\": %.6f, \"events\": %d },\n"
    recorder.rec_bound recorder.rec_off_s recorder.rec_on_s
    recorder.rec_events;
  out "  \"bounds\": [\n";
  List.iteri (fun i r ->
      out
        "    { \"bound\": %d, \"workset_seconds\": %.6f, \
         \"legacy_seconds\": %.6f, \"merges\": %d, \"hypotheses\": %d }%s\n"
        r.bound r.workset_s r.legacy_s r.merges r.survivors
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  Rt_util.Atomic_file.write path (Buffer.contents buf);
  Printf.printf "wrote %s\n" path

(* The same sweep through the Rt_obs sinks: both implementations' wall
   times as histograms plus the crossover gauge, in the schema `rtgen
   report` renders. Written next to the raw JSON ("*.metrics.json"). *)
let emit_metrics path rows sharded =
  let reg = Rt_obs.Registry.create () in
  let hw = Rt_obs.Registry.histogram reg "bench.workset_us" in
  let hl = Rt_obs.Registry.histogram reg "bench.legacy_us" in
  List.iter (fun r ->
      Rt_obs.Histogram.record hw (int_of_float (r.workset_s *. 1e6));
      Rt_obs.Histogram.record hl (int_of_float (r.legacy_s *. 1e6)))
    (List.sort (fun a b -> Int.compare a.bound b.bound) rows);
  Rt_obs.Registry.set_counter reg "bench.bounds_swept" (List.length rows);
  Rt_obs.Registry.set_counter reg "bench.jobs" sharded.sh_jobs;
  Rt_obs.Registry.set_counter reg "bench.shards"
    (List.fold_left (fun acc r -> max acc r.k) 0 sharded.runs);
  let hs = Rt_obs.Registry.histogram reg "bench.sharded_us" in
  List.iter
    (fun r -> Rt_obs.Histogram.record hs (int_of_float (r.sharded_s *. 1e6)))
    sharded.runs;
  (match crossover_bound rows with
   | Some b -> Rt_obs.Registry.set_gauge_named reg "bench.crossover_bound" b
   | None -> ());
  Rt_util.Atomic_file.write path
    (Rt_obs.Json.to_string ~pretty:true (Rt_obs.Registry.to_json reg));
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Table 1, exact row: "the precise but exponential algorithm ... took
   630.997 seconds and returned a single dependency function, which
   equaled the least upper bound of the dependency functions we obtained
   with heuristics".                                                    *)
(* ------------------------------------------------------------------ *)

let bench_exact_vs_heuristic () =
  section "Table 1 (exact row): exact vs heuristic";
  print_endline
    "The full 18-task trace is intractable for the undescribed-pruning-free\n\
     exact algorithm (see DESIGN.md); the exact/heuristic relation is\n\
     reproduced on instances where the exact version space fits in memory.";
  let instances =
    ("paper fig2 example", Rt_case.Paper_example.trace ())
    :: List.map (fun seed ->
        let d =
          Rt_task.Generator.generate
            { Rt_task.Generator.default with
              layers = 3; width_min = 1; width_max = 2;
              edge_density = 0.3; skip_density = 0.0 }
            ~seed
        in
        ( Printf.sprintf "random design (seed %d, %d tasks)" seed
            (Rt_task.Design.size d),
          Rt_sim.Simulator.run d
            { Rt_sim.Simulator.default_config with periods = 6; seed } ))
      [ 3; 8; 21 ]
  in
  let rows =
    List.filter_map (fun (name, trace) ->
        match wall (fun () -> Rt_learn.Exact.run ~limit:100_000 trace) with
        | exception Rt_learn.Exact.Blowup _ -> Some [ name; "blowup"; "-"; "-"; "-"; "-" ]
        | oe, te ->
          let oh, th = wall (fun () -> Rt_learn.Heuristic.run ~bound:1 trace) in
          let dominated =
            match oh.Rt_learn.Heuristic.hypotheses, oe.Rt_learn.Exact.hypotheses with
            | [ d1 ], (_ :: _ as de) -> Df.leq (Df.lub de) d1
            | [], [] -> true
            | _ -> false
          in
          Some
            [ name; Printf.sprintf "%.4f" te;
              string_of_int (List.length oe.Rt_learn.Exact.hypotheses);
              Printf.sprintf "%.4f" th;
              Printf.sprintf "%.1fx" (te /. Float.max th 1e-9);
              (if dominated then "yes" else "NO") ])
      instances
  in
  print_string
    (Table.render
       ~header:[ "instance"; "exact (s)"; "|D*|"; "bound-1 (s)"; "slowdown";
                 "lub(exact) below bound-1" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Figs. 1-4: the worked example of §3.3.                              *)
(* ------------------------------------------------------------------ *)

let bench_worked_example () =
  section "Figs. 1-4: §3.3 worked example (d11..d85, dLUB)";
  let trace = Rt_case.Paper_example.trace () in
  let oe = Rt_learn.Exact.run trace in
  let ok_final =
    List.length oe.hypotheses = 5
    && Df.equal (Df.lub oe.hypotheses) Rt_case.Paper_example.expected_lub
  in
  Printf.printf "exact reproduces the paper's 5 hypotheses and dLUB: %b\n"
    ok_final;
  let open Bechamel in
  print_bechamel ~quota:0.5
    [
      Test.make ~name:"fig2/exact"
        (Staged.stage (fun () -> ignore (Rt_learn.Exact.run trace)));
      Test.make ~name:"fig2/heuristic-bound1"
        (Staged.stage (fun () -> ignore (Rt_learn.Heuristic.run ~bound:1 trace)));
      Test.make ~name:"fig3/lattice-join-table"
        (Staged.stage (fun () ->
             List.iter (fun a ->
                 List.iter (fun b -> ignore (Rt_lattice.Depval.join a b))
                   Rt_lattice.Depval.all)
               Rt_lattice.Depval.all));
      Test.make ~name:"fig4/dot-render"
        (Staged.stage (fun () ->
             ignore
               (Rt_analysis.Dep_graph.to_dot Rt_case.Paper_example.expected_lub)));
    ]

(* ------------------------------------------------------------------ *)
(* Fig. 5 + §3.4 properties: the case-study pipeline.                  *)
(* ------------------------------------------------------------------ *)

let bench_case_study trace =
  section "Fig. 5 + §3.4: case-study pipeline";
  let design = Gm.design () in
  let model =
    match (Rt_learn.Heuristic.run ~bound:1 trace).hypotheses with
    | [ d ] -> d
    | _ -> failwith "case study learning failed"
  in
  let path = Rt_analysis.Latency.critical_path design in
  let pess, inf, gain = Rt_analysis.Latency.improvement design ~dep:model ~path in
  let q = Gm.task "Q" and o = Gm.task "O" in
  print_string
    (Table.render ~header:[ "property (sec. 3.4)"; "paper"; "reproduced" ]
       [
         [ "A, B disjunction nodes"; "yes";
           (let disj = Rt_analysis.Classify.disjunction_nodes model in
            if List.mem (Gm.task "A") disj && List.mem (Gm.task "B") disj
            then "yes" else "NO") ];
         [ "H, P, Q conjunction nodes"; "yes";
           (let conj = Rt_analysis.Classify.conjunction_nodes model in
            if List.for_all (fun x -> List.mem (Gm.task x) conj) [ "H"; "P"; "Q" ]
            then "yes" else "NO") ];
         [ "d(A,L) = ->"; "yes";
           Rt_lattice.Depval.to_string (Df.get model (Gm.task "A") (Gm.task "L")) ];
         [ "d(B,M) = ->"; "yes";
           Rt_lattice.Depval.to_string (Df.get model (Gm.task "B") (Gm.task "M")) ];
         [ "implicit Q-O dependency"; "yes";
           Rt_lattice.Depval.to_string (Df.get model q o) ];
         [ "state-space reduction"; "qualitative";
           Printf.sprintf "%.0fx" (Rt_analysis.Reachability.reduction model) ];
         [ "critical-path latency gain"; "qualitative";
           Printf.sprintf "%d -> %dus (%.2fx)" pess inf gain ];
       ]);
  let open Bechamel in
  print_bechamel ~quota:0.5
    [
      Test.make ~name:"fig5/simulate-27-periods"
        (Staged.stage (fun () -> ignore (Gm.trace ())));
      Test.make ~name:"fig5/learn-bound1"
        (Staged.stage (fun () -> ignore (Rt_learn.Heuristic.run ~bound:1 trace)));
      Test.make ~name:"fig5/classify"
        (Staged.stage (fun () -> ignore (Rt_analysis.Classify.classify model)));
      Test.make ~name:"fig5/reachability-2^18"
        (Staged.stage (fun () ->
             ignore (Rt_analysis.Reachability.count_consistent model)));
      Test.make ~name:"fig5/latency-critical-path"
        (Staged.stage (fun () ->
             ignore (Rt_analysis.Latency.improvement design ~dep:model ~path)));
      Test.make ~name:"fig5/dot-render"
        (Staged.stage (fun () ->
             ignore (Rt_analysis.Dep_graph.to_dot ~names:Gm.names model)));
    ]

(* ------------------------------------------------------------------ *)
(* §4 complexity: O(m·b² + m·b·t²) scaling sweeps.                      *)
(* ------------------------------------------------------------------ *)

let bench_scaling () =
  section "§4 complexity: scaling in m (messages) and t (tasks), bound fixed";
  let bound = 16 in
  let rows_m =
    List.map (fun periods ->
        let trace = Gm.trace ~periods () in
        let _, dt = wall (fun () -> Rt_learn.Heuristic.run ~bound trace) in
        [ string_of_int periods;
          string_of_int (Rt_trace.Trace.total_messages trace);
          Printf.sprintf "%.3f" dt ])
      (if fast_mode then [ 9; 18 ] else [ 9; 18; 27; 54 ])
  in
  print_string
    (Table.render ~aligns:[ Table.Right; Table.Right; Table.Right ]
       ~header:[ "periods"; "messages m"; Printf.sprintf "time (s), b=%d" bound ]
       rows_m);
  print_endline "expected shape: roughly linear in m.";
  let rows_t =
    List.filter_map (fun ntasks ->
        let design = Rt_task.Generator.sized ~ntasks ~seed:5 in
        match
          Rt_sim.Simulator.run design
            { Rt_sim.Simulator.default_config with periods = 27; seed = 5 }
        with
        | exception Rt_sim.Simulator.Overrun _ -> None
        | trace ->
          let _, dt = wall (fun () -> Rt_learn.Heuristic.run ~bound trace) in
          Some
            [ string_of_int (Rt_task.Design.size design);
              string_of_int (Rt_trace.Trace.total_messages trace);
              Printf.sprintf "%.3f" dt ])
      (if fast_mode then [ 6; 12 ] else [ 6; 12; 18; 24 ])
  in
  print_string
    (Table.render ~aligns:[ Table.Right; Table.Right; Table.Right ]
       ~header:[ "tasks t"; "messages m"; Printf.sprintf "time (s), b=%d" bound ]
       rows_t);
  print_endline "expected shape: polynomial (t enters via candidate-set size ~ t^2)."

(* ------------------------------------------------------------------ *)
(* Ablation: matching via backtracking vs SAT encoding.                *)
(* ------------------------------------------------------------------ *)

let bench_matching trace =
  section "Ablation: matching function, backtracking vs DPLL-SAT encoding";
  let model =
    match (Rt_learn.Heuristic.run ~bound:1 trace).hypotheses with
    | [ d ] -> d
    | _ -> failwith "unreachable"
  in
  let periods = Rt_trace.Trace.periods trace in
  let agree =
    List.for_all (fun p ->
        Rt_learn.Matching.matches model p = Rt_sat.Match_encoding.matches_sat model p)
      periods
  in
  Printf.printf "both deciders agree on all %d periods: %b\n"
    (List.length periods) agree;
  let p0 = List.hd periods in
  let open Bechamel in
  print_bechamel ~quota:0.5
    [
      Test.make ~name:"matching/backtracking"
        (Staged.stage (fun () -> ignore (Rt_learn.Matching.matches model p0)));
      Test.make ~name:"matching/sat-encode+solve"
        (Staged.stage (fun () ->
             ignore (Rt_sat.Match_encoding.matches_sat model p0)));
    ]

(* ------------------------------------------------------------------ *)
(* Ablation: merge policy under the bound.                             *)
(* ------------------------------------------------------------------ *)

let bench_merge_policy trace =
  section "Ablation: merge policy (paper merges the two lightest)";
  let policies =
    [ ("lightest-pair (paper)", Rt_learn.Heuristic.Lightest_pair);
      ("heaviest-pair", Rt_learn.Heuristic.Heaviest_pair);
      ("first+last", Rt_learn.Heuristic.First_last) ]
  in
  let rows =
    List.concat_map (fun bound ->
        List.map (fun (name, policy) ->
            let o, dt =
              wall (fun () -> Rt_learn.Heuristic.run ~policy ~bound trace)
            in
            let quality =
              match o.Rt_learn.Heuristic.hypotheses with
              | [] -> "inconsistent"
              | l -> string_of_int (Df.weight (Df.lub l))
            in
            [ string_of_int bound; name; Printf.sprintf "%.3f" dt;
              string_of_int o.Rt_learn.Heuristic.stats.merges; quality ])
          policies)
      [ 4; 16 ]
  in
  print_string
    (Table.render
       ~header:[ "bound"; "policy"; "time (s)"; "merges";
                 "lub weight (lower = more specific)" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Ablation: candidate window sensitivity.                             *)
(* ------------------------------------------------------------------ *)

let bench_candidate_window trace =
  section "Ablation: candidate-window sensitivity (A_m inference)";
  let windows = [ Some 200; Some 500; Some 1000; None ] in
  let rows =
    List.map (fun window ->
        let pairs =
          List.fold_left (fun acc p ->
              acc + Rt_trace.Candidates.pair_count ?window p)
            0 (Rt_trace.Trace.periods trace)
        in
        let o, dt =
          wall (fun () -> Rt_learn.Heuristic.run ?window ~bound:1 trace)
        in
        let weight, sound =
          match o.Rt_learn.Heuristic.hypotheses with
          | [ d ] ->
            ( string_of_int (Df.weight d),
              if Rt_learn.Matching.matches_trace d trace then "yes" else "NO" )
          | [] -> ("inconsistent", "-")
          | _ -> ("?", "-")
        in
        [ (match window with None -> "unbounded" | Some w -> string_of_int w);
          string_of_int pairs; Printf.sprintf "%.3f" dt; weight; sound ])
      windows
  in
  print_string
    (Table.render
       ~header:[ "window (us)"; "candidate pairs"; "time (s)";
                 "model weight"; "matches trace (unbounded M)" ]
       rows);
  print_endline
    "narrow windows shrink A_m (faster, more specific models) but risk\n\
     excluding the true sender/receiver; 'inconsistent' marks that failure."

(* ------------------------------------------------------------------ *)
(* Tooling micro-benchmarks: online learning, period inference, trace
   exports.                                                             *)
(* ------------------------------------------------------------------ *)

let bench_tooling trace =
  section "Tooling: online feed, period inference, exports";
  let periods = Rt_trace.Trace.periods trace in
  let p0 = List.hd periods in
  let flat =
    List.concat_map (fun (p : Rt_trace.Period.t) ->
        List.map (fun (e : Rt_trace.Event.t) ->
            { e with Rt_trace.Event.time = e.time + (p.index * 20_000) })
          p.events)
      periods
  in
  let open Bechamel in
  print_bechamel ~quota:0.5
    [
      Test.make ~name:"online/feed-one-period-bound8"
        (Staged.stage (fun () ->
             let st = Rt_learn.Heuristic.init ~bound:8 ~ntasks:18 () in
             Rt_learn.Heuristic.feed st p0));
      Test.make ~name:"tooling/infer-period"
        (Staged.stage (fun () -> ignore (Rt_trace.Trace.infer_period flat)));
      Test.make ~name:"tooling/stats"
        (Staged.stage (fun () -> ignore (Rt_trace.Stats.of_trace trace)));
      Test.make ~name:"tooling/vcd-export"
        (Staged.stage (fun () -> ignore (Rt_trace.Vcd.to_string trace)));
      Test.make ~name:"tooling/gantt-svg"
        (Staged.stage (fun () -> ignore (Rt_trace.Gantt.to_svg p0)));
    ]

(* ------------------------------------------------------------------ *)
(* Robustness: corrupt / recover-parse / checkpoint hot paths.          *)
(* ------------------------------------------------------------------ *)

let bench_robustness trace =
  section "Robustness: fault injection, recover-mode ingestion, checkpoints";
  let spec = { Rt_trace.Corrupt.default with rate = 0.1; seed = 7 } in
  let corrupted = Rt_trace.Corrupt.to_string (Rt_trace.Corrupt.apply spec trace) in
  let clean = Rt_trace.Trace_io.to_string trace in
  let st = Rt_learn.Heuristic.init ~bound:16 ~ntasks:18 () in
  List.iter (Rt_learn.Heuristic.feed st) (Rt_trace.Trace.periods trace);
  let ckpt = Rt_learn.Heuristic.checkpoint st in
  Printf.printf "corrupted text: %d bytes; checkpoint: %d bytes\n%!"
    (String.length corrupted) (String.length ckpt);
  let open Bechamel in
  print_bechamel ~quota:0.5
    [
      Test.make ~name:"robust/inject-10pct"
        (Staged.stage (fun () ->
             ignore (Rt_trace.Corrupt.apply spec trace)));
      Test.make ~name:"robust/parse-strict-clean"
        (Staged.stage (fun () ->
             ignore (Rt_trace.Trace_io.of_string clean)));
      Test.make ~name:"robust/parse-recover-clean"
        (Staged.stage (fun () ->
             ignore (Rt_trace.Trace_io.of_string ~mode:`Recover clean)));
      Test.make ~name:"robust/parse-recover-10pct"
        (Staged.stage (fun () ->
             ignore
               (Rt_trace.Trace_io.of_string ~mode:`Recover ~eps:60 corrupted)));
      Test.make ~name:"robust/checkpoint-bound16"
        (Staged.stage (fun () -> ignore (Rt_learn.Heuristic.checkpoint st)));
      Test.make ~name:"robust/resume-bound16"
        (Staged.stage (fun () ->
             ignore (Result.get_ok (Rt_learn.Heuristic.resume ckpt))));
    ];
  print_endline
    "recover-mode parsing on a clean trace should track strict parsing;\n\
     the gap on damaged input is the price of the repair pass."

(* ------------------------------------------------------------------ *)
(* Streaming engine: a 100k-period synthetic stream must ingest with
   memory bounded by one period — the segmenter's event high-water mark
   stays at a single period's size and the live heap after ingest is a
   constant (engine state), not a function of stream length.            *)
(* ------------------------------------------------------------------ *)

let bench_streaming () =
  section "Streaming engine: 100k-period ingest, memory bounded by one period";
  let module E = Rt_trace.Event in
  let ts = Rt_task.Task_set.of_names [| "a"; "b"; "c"; "d" |] in
  let n = if fast_mode then 10_000 else 100_000 in
  let events_per_period = 8 in
  let k = ref (-1) in
  let ev time kind = { E.time; kind } in
  let src =
    Rt_trace.Event_source.of_fun (fun () ->
        incr k;
        let period = !k / events_per_period
        and slot = !k mod events_per_period in
        if period >= n then None
        else
          let base = period * 1_000 in
          Some
            (match slot with
             | 0 -> ev (base + 10) (E.Task_start 0)
             | 1 -> ev (base + 100) (E.Task_end 0)
             | 2 -> ev (base + 110) (E.Msg_rise 0x10)
             | 3 -> ev (base + 130) (E.Msg_fall 0x10)
             | 4 -> ev (base + 150) (E.Task_start 1)
             | 5 -> ev (base + 300) (E.Task_end 1)
             | 6 -> ev (base + 350) (E.Task_start 2)
             | _ -> ev (base + 500) (E.Task_end 2)))
  in
  let seg = Rt_trace.Segmenter.create ~task_set:ts ~period_len:1_000 src in
  let eng =
    Rt_engine.Engine.create ~ntasks:4 (Rt_engine.Engine.Heuristic { bound = 4 })
  in
  Gc.full_major ();
  let before = Gc.quick_stat () in
  let res, dt = wall (fun () -> Rt_engine.Engine.feed_source eng seg) in
  Gc.full_major ();
  let after = Gc.quick_stat () in
  (match res with
   | Ok fed ->
     Printf.printf "fed %d periods in %.2fs (%.0f periods/s)\n" fed dt
       (float_of_int fed /. dt)
   | Error _ -> failwith "streaming bench: synthetic stream must segment");
  let buffered = Rt_trace.Segmenter.max_buffered seg in
  Printf.printf "segmenter high-water mark: %d events (one period = %d)\n"
    buffered events_per_period;
  if buffered <> events_per_period then
    failwith "streaming bench: memory bound violated";
  let live_delta = after.Gc.live_words - before.Gc.live_words in
  Printf.printf
    "live-heap delta across ingest: %d words (%.1f KiB) — engine state \
     only,\nindependent of the %d-period stream length\n"
    live_delta
    (float_of_int (live_delta * 8) /. 1024.)
    n;
  let snap = Rt_engine.Engine.finalize eng in
  Printf.printf "model: %d hypothesis(es) over %d messages\n"
    (List.length snap.Rt_engine.Engine.hypotheses)
    snap.Rt_engine.Engine.messages

(* ------------------------------------------------------------------ *)
(* Baseline: process-mining ordering inference vs the learner.         *)
(* ------------------------------------------------------------------ *)

let bench_baseline trace =
  section "Baseline: order miner vs version-space learner (design ground truth)";
  let fmt m = Format.asprintf "%a" Rt_mining.Order_miner.pp_metrics m in
  (* On the GM trace: the single conservative LUB model vs the miner. At
     bound 1 both degrade to co-execution implication + ordering, which
     is exactly why the version space's answer SET matters — shown on the
     exact-tractable instances below. *)
  let design = Gm.design () in
  let truth = Option.get (Rt_task.Design.ground_truth design) in
  let model =
    match (Rt_learn.Heuristic.run ~bound:1 trace).hypotheses with
    | [ d ] -> d
    | _ -> failwith "unreachable"
  in
  let mined, t_mined = wall (fun () -> Rt_mining.Order_miner.infer trace) in
  print_string
    (Table.render ~header:[ "method (GM trace)"; "time (s)"; "vs design ground truth" ]
       [
         [ "order miner (no messages)"; Printf.sprintf "%.4f" t_mined;
           fmt (Rt_mining.Order_miner.score ~predicted:mined ~truth) ];
         [ "learner LUB (bound 1)"; "see Table 1";
           fmt (Rt_mining.Order_miner.score ~predicted:model ~truth) ];
       ]);
  (* Where the version space pays off: its most specific hypotheses are
     individually far sharper than any single conservative model. *)
  let rows =
    List.filter_map (fun seed ->
        let d =
          Rt_task.Generator.generate
            { Rt_task.Generator.default with
              layers = 3; width_min = 1; width_max = 2;
              edge_density = 0.3; skip_density = 0.0 }
            ~seed
        in
        match Rt_task.Design.ground_truth d with
        | None -> None
        | Some truth ->
          let tr =
            Rt_sim.Simulator.run d
              { Rt_sim.Simulator.default_config with periods = 8; seed }
          in
          (match Rt_learn.Exact.run ~limit:100_000 tr with
           | exception Rt_learn.Exact.Blowup _ -> None
           | oe when oe.hypotheses = [] -> None
           | oe ->
             let mined = Rt_mining.Order_miner.infer tr in
             let score p = Rt_mining.Order_miner.score ~predicted:p ~truth in
             let best =
               List.fold_left (fun acc h ->
                   let s = score h in
                   match acc with
                   | Some (_, s') when s'.Rt_mining.Order_miner.definite_precision
                                       >= s.Rt_mining.Order_miner.definite_precision -> acc
                   | _ -> Some (h, s))
                 None oe.hypotheses
             in
             let lub = Df.lub oe.hypotheses in
             (match best with
              | None -> None
              | Some (_, sbest) ->
                Some
                  [ Printf.sprintf "seed %d (%d tasks, |D*|=%d)" seed
                      (Rt_task.Design.size d) (List.length oe.hypotheses);
                    Printf.sprintf "%.2f" (score mined).definite_precision;
                    Printf.sprintf "%.2f" (score lub).definite_precision;
                    Printf.sprintf "%.2f" sbest.Rt_mining.Order_miner.definite_precision ])))
      [ 3; 8; 21; 33 ]
  in
  print_string
    (Table.render
       ~header:[ "instance"; "miner precision"; "learner-LUB precision";
                 "best exact hypothesis" ]
       rows);
  print_endline
    "definite-edge precision vs design ground truth; the exact answer set\n\
     contains hypotheses that dominate what any single ordering-based model\n\
     can achieve."

(* ------------------------------------------------------------------ *)
(* Static analysis: how long a whole-tree rtlint pass costs, so CI's
   lint gate has a tracked budget.                                     *)
(* ------------------------------------------------------------------ *)

(* The bench binary runs from _build/default/bench; walk up to the
   checkout root (the directory holding dune-project) to find the
   sources rtlint audits. *)
let source_root () =
  let rec up dir n =
    if n = 0 then None
    else if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else up (Filename.dirname dir) (n - 1)
  in
  up (Sys.getcwd ()) 6

let bench_lint () =
  section "Static analysis: rtlint over lib/ bin/ bench/";
  match source_root () with
  | None -> print_endline "dune-project not found above cwd; skipped"
  | Some root ->
    let paths =
      List.map (Filename.concat root) [ "lib"; "bin"; "bench" ]
      |> List.filter Sys.file_exists
    in
    let res, dt = wall (fun () -> Rt_lint.Lint.lint_paths paths) in
    (match res with
     | Error msg -> Printf.printf "rtlint failed: %s\n" msg
     | Ok findings ->
       Printf.printf "linted %s in %.3f s: %d finding(s)\n"
         (String.concat " " (List.map Filename.basename paths))
         dt (List.length findings))

let () =
  Printf.printf "rtgen benchmark harness%s\n"
    (if fast_mode then " (RTGEN_BENCH_FAST=1: reduced sweeps)" else "");
  let trace = Gm.trace () in
  let table1_rows = bench_table1 trace in
  let sharded = bench_sharded trace in
  let recorder = bench_recorder trace in
  Option.iter (fun path ->
      emit_json path trace table1_rows sharded recorder;
      emit_metrics
        (Filename.remove_extension path ^ ".metrics.json")
        table1_rows sharded)
    json_path;
  bench_exact_vs_heuristic ();
  bench_worked_example ();
  bench_case_study trace;
  bench_scaling ();
  bench_matching trace;
  bench_merge_policy trace;
  bench_candidate_window trace;
  bench_tooling trace;
  bench_robustness trace;
  bench_streaming ();
  bench_baseline trace;
  bench_lint ();
  print_newline ()
