(* rtgen — command-line front end: simulate black-box systems, learn
   dependency models from traces, analyze and export them.

   Exit codes (shared with rtlint, see Rt_check.Exit_code): 0 success,
   1 findings / violated properties, 2 unreadable or malformed input,
   3 internal error; cmdliner keeps 124 for command-line misuse. *)

open Cmdliner

module Ec = Rt_check.Exit_code
module Store = Rt_store.Store
module Codec = Rt_store.Codec
module Slot = Rt_store.Slot

(* Commands evaluate to their exit code (Cmd.eval'); every input
   failure goes through here so stderr phrasing and the exit code
   stay consistent. *)
let err msg =
  prerr_endline ("rtgen: " ^ msg);
  Ec.input_error

(* Load a trace; in recover mode the quarantine summary goes to stderr so
   stdout stays pipeable model output. Strict loads go through the
   zero-copy mmap reader (byte-for-byte parity with the boxed loader,
   enforced by test_arena); timestamps beyond the 41-bit packed range —
   or any OS-level mmap refusal — fall back to the boxed path, whose
   error phrasing is the contract. *)
let read_trace ?(mode = `Strict) ?eps ?window ?obs ?(quiet = false) path =
  let boxed () = Rt_trace.Trace_io.load ~mode ?eps ?obs path in
  let load () =
    match mode with
    | `Recover -> boxed ()
    | `Strict ->
      (match Rt_trace.Mmap_io.load ?obs path with
       | Ok (mm, q) -> Ok (mm.Rt_trace.Mmap_io.trace, q)
       | Error e when Rt_trace.Mmap_io.is_range_error e -> boxed ()
       | Error _ as e -> e
       | exception Unix.Unix_error _ -> boxed ())
  in
  match load () with
  | Ok (t, q) ->
    let t, q =
      if mode = `Recover then Rt_trace.Trace_io.semantic_filter ?window ?obs t q
      else (t, q) in
    if mode = `Recover && not quiet then
      prerr_endline (Rt_trace.Quarantine.summary q);
    Ok (t, q)
  | Error e ->
    Error (Printf.sprintf "%s: line %d: %s" path e.line e.message)
  | exception Sys_error m -> Error m

(* Shared -j/--jobs support. [jobs <= 1] stays strictly sequential (no
   pool, no domains); learned results are identical either way — only
   wall-clock time may differ. *)
let with_pool jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Rt_util.Domain_pool.create ~jobs in
    Fun.protect ~finally:(fun () -> Rt_util.Domain_pool.shutdown pool)
      (fun () -> f (Some pool))
  end

(* --- simulate --- *)

let design_of_spec ~case_study ~tasks ~local_fraction ~seed =
  if case_study then (Rt_case.Gm_model.design (), Rt_case.Gm_model.names)
  else
    let layers = max 2 (tasks / 3) in
    let width = max 1 (tasks / layers) in
    let d =
      Rt_task.Generator.generate
        { Rt_task.Generator.default with
          layers; width_min = width; width_max = width + 1; local_fraction }
        ~seed
    in
    (d, Rt_task.Task_set.names (Rt_task.Design.task_set d))

(* End offset after [k] more lines of [text] starting at [off]. *)
let offset_after_lines text off k =
  let n = String.length text in
  let rec go off k =
    if k = 0 || off >= n then off
    else
      match String.index_from_opt text off '\n' with
      | None -> n
      | Some i -> go (i + 1) (k - 1)
  in
  go off k

(* `simulate --fleet N --spool DIR`: one trace per vehicle (seed+i), all
   written into the daemon's spool. With --trickle-lines the files grow
   round-robin, K lines at a time with a flush and a pause per sweep —
   N concurrently growing logs, which is what `rtgen serve` follows and
   what the chaos test SIGKILLs a daemon in the middle of. The final
   bytes are identical to a one-shot write, so reference models can be
   learned from the same files afterwards. *)
let simulate_fleet ~case_study ~tasks ~local_fraction ~seed ~periods
    ~drop_rate ~jitter_spike_rate ~glitch_rate ~fleet ~dir ~trickle_lines
    ~trickle_sleep =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  match
    Array.init fleet (fun i ->
        let seed = seed + i in
        let design, _ =
          design_of_spec ~case_study ~tasks ~local_fraction ~seed
        in
        let trace =
          Rt_sim.Simulator.run design
            { Rt_sim.Simulator.default_config with
              periods; seed; drop_rate; jitter_spike_rate; glitch_rate }
        in
        ( Printf.sprintf "vehicle%02d" i,
          Rt_trace.Trace_io.to_string trace ))
  with
  | exception Rt_sim.Simulator.Overrun { period; time } ->
    err (Printf.sprintf "design not schedulable: period %d overran at %dus"
           period time)
  | vehicles ->
    (match trickle_lines with
     | None ->
       Array.iter
         (fun (id, text) ->
           let path = Filename.concat dir (id ^ ".trace") in
           Rt_util.Atomic_file.write path text;
           Printf.eprintf "wrote %s\n" path)
         vehicles
     | Some k ->
       let n = Array.length vehicles in
       let ocs =
         Array.map
           (fun (id, _) ->
             (* rtlint: allow RTL007 trickle mode grows files in place so a tailing daemon sees partial traces *)
             open_out_bin (Filename.concat dir (id ^ ".trace")))
           vehicles
       in
       let offs = Array.make n 0 in
       let remaining = ref n in
       while !remaining > 0 do
         for i = 0 to n - 1 do
           let _, text = vehicles.(i) in
           let len = String.length text in
           if offs.(i) < len then begin
             let stop = offset_after_lines text offs.(i) k in
             output_substring ocs.(i) text offs.(i) (stop - offs.(i));
             flush ocs.(i);
             offs.(i) <- stop;
             if stop >= len then begin
               close_out ocs.(i);
               decr remaining
             end
           end
         done;
         if !remaining > 0 && trickle_sleep > 0.0 then Unix.sleepf trickle_sleep
       done;
       Printf.eprintf "trickled %d vehicle trace(s) into %s\n" n dir);
    Ec.ok

let simulate case_study tasks seed periods output dot drop_rate local_fraction
    jitter_spike_rate glitch_rate fleet spool trickle_lines trickle_sleep =
  match fleet with
  | Some n when n > 0 ->
    (match spool with
     | None -> err ("--fleet requires --spool DIR")
     | Some dir ->
       simulate_fleet ~case_study ~tasks ~local_fraction ~seed ~periods
         ~drop_rate ~jitter_spike_rate ~glitch_rate ~fleet:n ~dir
         ~trickle_lines ~trickle_sleep)
  | Some _ -> err ("--fleet must be positive")
  | None ->
    let design, _names =
      design_of_spec ~case_study ~tasks ~local_fraction ~seed
    in
    if dot then begin
      print_string (Rt_task.Design.to_dot design);
      Ec.ok
    end
    else
      match
        Rt_sim.Simulator.run design
          { Rt_sim.Simulator.default_config with
            periods; seed; drop_rate; jitter_spike_rate; glitch_rate }
      with
      | exception Rt_sim.Simulator.Overrun { period; time } ->
        err (Printf.sprintf "design not schedulable: period %d overran at %dus"
                  period time)
      | trace ->
        (match output with
         | None -> print_string (Rt_trace.Trace_io.to_string trace)
         | Some path ->
           Rt_trace.Trace_io.save path trace;
           Printf.eprintf "wrote %s (%s)\n" path
             (Format.asprintf "%a" Rt_trace.Trace.pp_summary trace));
        Ec.ok

(* --- learn --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

(* Open DIR, resolve [ref[@N|@latest]], read (and hash-verify) the
   blob: the one way every consumer dereferences a store address. *)
let resolve_blob dir spec =
  let ( let* ) = Result.bind in
  let* s = Store.open_ dir in
  let* e = Store.resolve s spec in
  let* blob = Store.read_blob s e.Store.address in
  Ok (e, blob)

(* A corrupt checkpoint is survivable (the fallback relearns from
   scratch) but must never be invisible: operators watching a fleet
   need to know recovery aids are dying. One counter — rendered as
   checkpoint_corrupt_total by the Prometheus exposition — and one
   flight event per discarded checkpoint. *)
let note_corrupt_checkpoint ~obs ~flight where why =
  (match obs with
   | Some r -> Rt_obs.Registry.incr (Rt_obs.Registry.counter r "checkpoint.corrupt")
   | None -> ());
  match flight with
  | Some f ->
    Rt_obs.Flight.record f Rt_obs.Flight.Warn ~stream:where
      ~kind:"checkpoint.corrupt"
      (Printf.sprintf "%s; starting fresh" why)
  | None -> ()

(* Checkpointed heuristic learning: feed period by period, snapshotting the
   engine every [every] periods into [ckpt] — a bare file or a store ref
   ([DIR//ref]). A checkpoint is tagged with a digest of the
   (post-quarantine) trace so a resume against different data is refused
   rather than silently wrong. [stop_after] processes that many periods and
   exits — a deterministic stand-in for getting killed, used by the tests. *)
let run_checkpointed ~pool ~obs ~flight ~progress ~window ~bound ~every
    ~stop_after ~ckpt (q : Rt_trace.Quarantine.t) trace =
  let module Eng = Rt_engine.Engine in
  let tag = Digest.to_hex (Digest.string (Rt_trace.Trace_io.to_string trace)) in
  let ckpt_path = Slot.describe ckpt in
  let fresh () =
    let eng =
      Eng.create ?window ?pool ?obs
        ~ntasks:(Rt_trace.Trace.task_count trace) (Eng.Heuristic { bound })
    in
    Eng.set_provenance eng
      ~dropped:(List.length q.dropped)
      ~repaired:(List.length q.repaired);
    Ok eng
  in
  let corrupt m =
    (* Integrity damage (torn write, flipped bit): the checkpoint
       is an optimization, not the data — warn and relearn from
       scratch rather than dying on a recovery aid. A *mismatched*
       checkpoint still refuses below: that one parsed fine and
       points at operator error. *)
    Printf.eprintf
      "warning: %s: %s; starting fresh (the corrupt checkpoint will \
       be overwritten)\n" ckpt_path m;
    note_corrupt_checkpoint ~obs ~flight ckpt_path
      (Printf.sprintf "%s: %s" ckpt_path m);
    fresh ()
  in
  let eng =
    if Slot.exists ckpt then
      match Slot.load ckpt with
      | Error m -> corrupt m
      | Ok data ->
        (match Eng.resume ?pool ?obs (data) with
         | Ok (eng, tag') when tag' = tag ->
           Printf.eprintf "resumed %s: %d periods already processed\n"
             ckpt_path (Eng.periods_fed eng);
           Ok eng
         | Ok _ ->
           Error (Printf.sprintf
                    "%s was checkpointed against a different trace; delete it \
                     to start over" ckpt_path)
         | Error m -> corrupt m)
    else fresh ()
  in
  match eng with
  | Error _ as e -> e
  | Ok eng ->
    let periods = Rt_trace.Trace.periods trace in
    let total = List.length periods in
    let skip = Eng.periods_fed eng in
    if skip > total then
      Error (Printf.sprintf
               "%s claims %d periods processed but the trace has only %d"
               ckpt_path skip total)
    else begin
      let write_ckpt () =
        match Eng.checkpoint ~tag eng with
        | Ok data ->
          Slot.save ~bound ~source:tag
            ~created_at:(Eng.periods_fed eng) ckpt data
        | Error m -> Printf.eprintf "checkpoint failed: %s\n" m
      in
      let stopped = ref false in
      (try
         List.iteri (fun i p ->
             if i >= skip && not !stopped then begin
               Eng.feed eng p;
               let done_ = i + 1 in
               (match progress with
                | Some n when done_ mod n = 0 || done_ = total ->
                  Printf.eprintf "progress: %d/%d periods, %d hypotheses\n%!"
                    done_ total (List.length (Eng.current eng))
                | Some _ | None -> ());
               if done_ mod every = 0 || done_ = total then write_ckpt ();
               match stop_after with
               | Some k when done_ - skip >= k -> stopped := true
               | Some _ | None -> ()
             end)
           periods
       with e -> write_ckpt (); raise e);
      if !stopped then begin
        write_ckpt ();
        Eng.publish eng;
        Printf.eprintf "stopped after %d periods (checkpoint in %s)\n"
          (Eng.periods_fed eng) ckpt_path;
        Ok None
      end
      else begin
        (* Success: the checkpoint has served its purpose. *)
        Slot.discard ckpt;
        Ok (Some (Eng.snapshot eng, eng))
      end
    end

(* `--shards K --checkpoint`: shards are processed sequentially, each
   snapshotting its engine pair (main + bound-1 companion) to
   FILE.shard<i> / FILE.shard<i>.b1 every [every] periods. Tags bind
   the trace digest, shard index, partition width and bound, so a
   resume against different data or a different partition is refused
   rather than silently wrong. All files are removed on success.
   Returns [Ok None] when --stop-after cut the run short, otherwise
   [Ok (Some model)] with the folded model option. *)
let run_checkpointed_sharded ~obs ~flight ~progress ~window ~bound ~shards
    ~every ~stop_after ~ckpt trace =
  let module Eng = Rt_engine.Engine in
  let module S = Rt_shard.Shard in
  let digest =
    Digest.to_hex (Digest.string (Rt_trace.Trace_io.to_string trace))
  in
  let periods = trace.Rt_trace.Trace.periods in
  let total = Array.length periods in
  let ranges = S.plan ~shards ~periods:total in
  let k = Array.length ranges in
  let ntasks = Rt_trace.Trace.task_count trace in
  let tag i which = Printf.sprintf "%s+shard%d/%d+b%d+%s" digest i k bound which in
  (* Per-shard slots: FILE.shard<i>[.b1] for files, ref/shard<i>[/b1]
     generations for store-backed checkpoints. *)
  let slot_of i which =
    match ckpt with
    | Slot.File p ->
      Slot.File
        (Printf.sprintf "%s.shard%d%s" p i
           (if which = "b1" then ".b1" else ""))
    | Slot.Ref (s, r) ->
      Slot.Ref
        ( s,
          Printf.sprintf "%s/shard%d%s" r i
            (if which = "b1" then "/b1" else "") )
  in
  let path_of i which = Slot.describe (slot_of i which) in
  (* Resume an engine from its per-shard slot, or start fresh. *)
  let engine_at i which engine_bound =
    let slot = slot_of i which in
    let path = path_of i which in
    let corrupt m =
      (* Same degradation as the unsharded path: a corrupt checkpoint
         costs a relearn of this shard, never the run. *)
      Printf.eprintf "warning: %s: %s; starting shard fresh\n" path m;
      note_corrupt_checkpoint ~obs ~flight path (Printf.sprintf "%s: %s" path m);
      Ok (Eng.create ?window ~ntasks (Eng.Heuristic { bound = engine_bound }))
    in
    if Slot.exists slot then
      match Slot.load slot with
      | Error m -> corrupt m
      | Ok data ->
        (match Eng.resume data with
         | Ok (eng, t) when t = tag i which ->
           if Eng.periods_fed eng > 0 then
             Printf.eprintf "resumed %s: %d periods already processed\n" path
               (Eng.periods_fed eng);
           Ok eng
         | Ok _ ->
           Error (Printf.sprintf
                    "%s was checkpointed against a different trace or \
                     partition; delete it to start over" path)
         | Error m -> corrupt m)
    else Ok (Eng.create ?window ~ntasks (Eng.Heuristic { bound = engine_bound }))
  in
  let budget = ref (match stop_after with Some n -> n | None -> max_int) in
  let stopped = ref false in
  let done_total = ref 0 in
  let finished = ref [] in
  let rec shard_loop i =
    if i >= k || !stopped then Ok ()
    else
      let lo, hi = ranges.(i) in
      match engine_at i "main" bound with
      | Error _ as e -> e
      | Ok main ->
        (match
           if bound = 1 then Ok None
           else Result.map Option.some (engine_at i "b1" 1)
         with
         | Error _ as e -> e
         | Ok comp ->
           let skip = Eng.periods_fed main in
           let comp_skip =
             match comp with Some c -> Eng.periods_fed c | None -> skip
           in
           if comp_skip <> skip then begin
             (* A kill between the two dumps (main written, companion
                not yet) leaves the pair one period apart; engines
                cannot rewind, so relearn the shard from scratch. *)
             Printf.eprintf
               "warning: %s and its .b1 companion disagree on progress \
                (%d vs %d); restarting shard %d fresh\n"
               (path_of i "main") skip comp_skip i;
             let main = Eng.create ?window ~ntasks (Eng.Heuristic { bound }) in
             let comp =
               if bound = 1 then None
               else Some (Eng.create ?window ~ntasks (Eng.Heuristic { bound = 1 }))
             in
             run_shard i lo hi main comp
           end
           else if skip > hi - lo then
             Error (Printf.sprintf
                      "%s claims %d periods processed but shard %d has \
                       only %d" (path_of i "main") skip i (hi - lo))
           else run_shard i lo hi main comp)
  and run_shard i lo hi main comp =
    let skip = Eng.periods_fed main in
    done_total := !done_total + skip;
    let write_ckpt () =
      let dump which eng =
        match Eng.checkpoint ~tag:(tag i which) eng with
        | Ok data ->
          Slot.save ~bound:(if which = "b1" then 1 else bound)
            ~source:(tag i which) ~created_at:(Eng.periods_fed eng)
            (slot_of i which) data
        | Error m -> Printf.eprintf "checkpoint failed: %s\n" m
      in
      dump "main" main;
      Option.iter (dump "b1") comp
    in
    (try
       for j = lo + skip to hi - 1 do
         if not !stopped then begin
           Eng.feed main periods.(j);
           Option.iter (fun c -> Eng.feed c periods.(j)) comp;
           incr done_total;
           decr budget;
           (match progress with
            | Some n when !done_total mod n = 0 || !done_total = total ->
              Printf.eprintf
                "progress: %d/%d periods (shard %d), %d hypotheses\n%!"
                !done_total total i (List.length (Eng.current main))
            | Some _ | None -> ());
           let fed = Eng.periods_fed main in
           if fed mod every = 0 || fed = hi - lo then write_ckpt ();
           if !budget <= 0 then stopped := true
         end
       done
     with e -> write_ckpt (); raise e);
    if Eng.periods_fed main < hi - lo then begin
      write_ckpt ();
      Ok ()  (* stopped mid-shard; the outer match reports it *)
    end
    else begin
      finished := Option.value comp ~default:main :: !finished;
      shard_loop (i + 1)
    end
  in
  match shard_loop 0 with
  | Error _ as e -> e
  | Ok () ->
    if !stopped then begin
      Printf.eprintf "stopped after %d periods (checkpoints in %s.shard*)\n"
        !done_total (Slot.describe ckpt);
      Ok None
    end
    else begin
      let companions = Array.of_list (List.rev !finished) in
      let parts =
        Array.map
          (fun e -> (S.summary_of e, Option.get (Eng.violations e)))
          companions
      in
      let model = S.fold_summaries parts in
      (* Success: the checkpoints have served their purpose. *)
      for i = 0 to k - 1 do
        Slot.discard (slot_of i "main");
        Slot.discard (slot_of i "b1")
      done;
      Ok (Some (model, parts))
    end

(* Write the registry's sinks. Atomic writes: a run killed mid-dump never
   leaves a truncated JSON document behind. The profiler sinks go to
   stderr / a side file so the model on stdout stays byte-identical to
   an unprofiled run. *)
let write_sinks ?(profile = false) ?folded ~metrics ~trace_events obs =
  match obs with
  | None -> ()
  | Some reg ->
    let dump path json =
      Rt_util.Atomic_file.write path (Rt_obs.Json.to_string ~pretty:true json);
      Printf.eprintf "wrote %s\n" path
    in
    Option.iter (fun p -> dump p (Rt_obs.Registry.to_json reg)) metrics;
    Option.iter (fun p -> dump p (Rt_obs.Registry.trace_events_json reg))
      trace_events;
    if profile then prerr_string (Rt_obs.Profile.hotspots reg);
    Option.iter
      (fun p ->
        Rt_util.Atomic_file.write p (Rt_obs.Profile.folded reg);
        Printf.eprintf "wrote %s\n" p)
      folded

let inconsistent_msg =
  "inconsistent trace: some message has no admissible \
   sender/receiver under the assumed model of computation"

let output_model ~names ~dot ~output lub =
  (match output with
   | Some file ->
     (* Atomic: byte-equality sweeps diff these files, so a killed run
        must never leave a truncated image behind. *)
     Rt_util.Atomic_file.write file
       (Rt_lattice.Depfun.to_string ~names lub ^ "\n");
     Printf.eprintf "wrote model to %s\n" file
   | None -> ());
  if dot then print_string (Rt_analysis.Dep_graph.to_dot ~names lub)
  else Format.printf "%s@." (Rt_lattice.Depfun.to_string ~names lub);
  Ec.ok

(* Shared tail of `learn`: print (or save, or dot) the answer set. *)
let render_model ~names ~dot ~output hs =
  match hs with
  | [] -> err inconsistent_msg
  | hs ->
    if not dot then
      Format.printf "%d most specific hypothesis(es); least upper bound:@."
        (List.length hs);
    output_model ~names ~dot ~output (Rt_lattice.Depfun.lub hs)

(* Sharded tail: stdout carries only the folded model, which is
   byte-identical for every shard count (the sharding contract);
   per-shard accounting goes to stderr. *)
let render_folded ~names ~dot ~output = function
  | None -> err inconsistent_msg
  | Some model ->
    if not dot then Format.printf "folded model (exact at bound 1):@.";
    output_model ~names ~dot ~output model

(* Commit a learned model to a content-addressed store: the bound-1
   companion parts (the pre-weaken fleet-merge interchange consumed by
   `rtgen merge`) under REF/b1 (REF/b1/<i> when sharded), optionally
   the full answer set under REF/answers, and the model itself under
   REF with the companion addresses as parents — so `store gc` keeps
   the interchange alive exactly as long as the model is referenced. *)
let store_commit ~store ~ref_ ~names ~bound ~source ~created_at ?answers
    ~(parts : (Rt_lattice.Depfun.t option * bool array array) array) model =
  let ( let* ) = Result.bind in
  let* s = Store.init store in
  let meta kind ~bound ~parents =
    { Store.kind; bound = Some bound; source = Some source; parents;
      created_at }
  in
  let companion_refs =
    match Array.to_list parts with
    | [ p ] -> [ (ref_ ^ "/b1", p) ]
    | ps -> List.mapi (fun i p -> (Printf.sprintf "%s/b1/%d" ref_ i, p)) ps
  in
  let* parents =
    List.fold_left
      (fun acc (r, (summary, violations)) ->
         let* acc = acc in
         match summary with
         | None -> Error (r ^ ": inconsistent part has no companion")
         | Some summary ->
           let blob = Codec.companion_to_blob ~names ~summary ~violations () in
           let* e = Store.commit s ~ref_:r ~meta:(meta Store.Companion ~bound:1 ~parents:[]) blob in
           Ok (e.Store.address :: acc))
      (Ok []) companion_refs
  in
  let parents = List.rev parents in
  if parents = [] then
    Printf.eprintf
      "note: no bound-1 companion produced; %s is committed without the \
       fleet-merge interchange\n" ref_;
  let* () =
    match answers with
    | None | Some [] -> Ok ()
    | Some hs ->
      let* _ =
        Store.commit s ~ref_:(ref_ ^ "/answers")
          ~meta:(meta Store.Answerset ~bound ~parents:[])
          (Codec.answerset_to_blob ~names hs)
      in
      Ok ()
  in
  let* e =
    Store.commit s ~ref_ ~meta:(meta Store.Model ~bound ~parents)
      (Codec.model_to_blob ~names model)
  in
  Printf.eprintf "stored %s//%s@%d %s (%d companion part(s))\n"
    (Store.root s) ref_ e.Store.gen e.Store.address (List.length parents);
  Ok ()

let blowup_msg set_size limit =
  Printf.sprintf
    "exact version space exceeded %d (limit %d); use the heuristic \
     (--bound) or a candidate --window"
    set_size limit

(* `learn --stream`: parse, salvage and learn one period at a time — the
   trace is never materialized, so a multi-hour capture (or stdin from a
   live logger) costs one period of memory. Produces the same model and
   the same quarantine account as the batch path, because both sit on
   Stream_io / salvage_period / Engine. *)
let learn_stream ~exact ~shards ~bound ~window ~jobs ~obs ~mode ~eps ~progress
    ~dot ~output ~store ~store_ref ~metrics ~trace_events ~profile ~folded
    path =
  let write_sinks = write_sinks ~profile ?folded in
  let module Eng = Rt_engine.Engine in
  let module SStream = Rt_shard.Shard.Stream in
  match (if path = "-" then Ok stdin
         else try Ok (open_in path) with Sys_error m -> Error m)
  with
  | Error m -> err (m)
  | Ok ic ->
    Fun.protect ~finally:(fun () -> if path <> "-" then close_in_noerr ic)
      (fun () ->
         with_pool jobs (fun pool ->
             let parser =
               Rt_trace.Stream_io.create ~mode ~eps
                 (Rt_trace.Stream_io.lines_of_channel ic)
             in
             let alg =
               if exact then Eng.Exact { limit = None }
               else Eng.Heuristic { bound }
             in
             (* One engine, or — with --shards K — K round-robin units
                (engine pairs) folded at end of stream. The sharded
                units are private and obs-free; shard.* counters are
                published from this domain instead. *)
             let core = ref None in
             let core_of ts =
               match !core with
               | Some c -> c
               | None ->
                 let ntasks = Rt_task.Task_set.size ts in
                 let c =
                   match shards with
                   | Some k ->
                     `Sharded
                       (SStream.create ?window ~ntasks ~bound ~shards:k ())
                   | None ->
                     (* With --store, run a bound-1 companion alongside:
                        its pre-weaken matrix is the fleet-merge
                        interchange this process publishes. At bound 1
                        the main engine is its own companion. *)
                     let comp =
                       if store <> None && not exact && bound > 1 then
                         Some (Eng.create ?window ~ntasks
                                 (Eng.Heuristic { bound = 1 }))
                       else None
                     in
                     `Single (Eng.create ?window ?pool ?obs ~ntasks alg, comp)
                 in
                 core := Some c; c
             in
             let feed_core c p =
               match c with
               | `Single (e, comp) ->
                 Eng.feed e p;
                 Option.iter (fun c -> Eng.feed c p) comp
               | `Sharded s -> SStream.feed s p
             in
             let periods_fed_core = function
               | `Single (e, _) -> Eng.periods_fed e
               | `Sharded s -> SStream.periods_fed s
             in
             let hypotheses_core = function
               | `Single (e, _) -> List.length (Eng.current e)
               | `Sharded s -> SStream.hypotheses s
             in
             let excised = ref [] and sem_dropped = ref [] in
             let rec pump () =
               match Rt_trace.Stream_io.next parser with
               | Error e ->
                 Error (Printf.sprintf "%s: line %d: %s" path e.line e.message)
               | Ok None -> Ok ()
               | Ok (Some p) ->
                 let c =
                   core_of (Option.get (Rt_trace.Stream_io.task_set parser))
                 in
                 let fed =
                   if mode = `Recover then
                     match Rt_trace.Trace_io.salvage_period ?window p with
                     | `Clean -> feed_core c p; true
                     | `Excised (p', n) ->
                       excised := (p'.Rt_trace.Period.index, n) :: !excised;
                       feed_core c p'; true
                     | `Dropped ->
                       sem_dropped := p.Rt_trace.Period.index :: !sem_dropped;
                       false
                   else (feed_core c p; true)
                 in
                 (if fed then
                    match progress with
                    | Some n when periods_fed_core c mod n = 0 ->
                      Printf.eprintf "progress: %d periods, %d hypotheses\n%!"
                        (periods_fed_core c) (hypotheses_core c)
                    | Some _ | None -> ());
                 pump ()
             in
             let outcome =
               match pump () with
               | exception Rt_learn.Exact.Blowup { set_size; limit; _ } ->
                 Error (blowup_msg set_size limit)
               | r -> r
             in
             match outcome with
             | Error m -> err (m)
             | Ok () ->
               let excised = List.rev !excised
               and dropped_idx = List.rev !sem_dropped in
               let q =
                 let q0 = Rt_trace.Stream_io.quarantine parser in
                 if mode = `Recover then
                   Rt_trace.Trace_io.salvage_account q0 ~excised ~dropped_idx
                 else q0
               in
               (match obs with
                | Some r ->
                  if mode = `Recover then
                    Rt_trace.Trace_io.publish_salvage r q
                      ~frames_excised:
                        (List.fold_left (fun a (_, n) -> a + n) 0 excised)
                  else Rt_trace.Trace_io.publish_quarantine_to r q
                | None -> ());
               if mode = `Recover then
                 prerr_endline (Rt_trace.Quarantine.summary q);
               match !core with
               | Some c when periods_fed_core c > 0 ->
                 let names =
                   Rt_task.Task_set.names
                     (Option.get (Rt_trace.Stream_io.task_set parser))
                 in
                 let commit ~parts ?answers model =
                   match store with
                   | None -> Ec.ok
                   | Some dir ->
                     (match
                        store_commit ~store:dir ~ref_:store_ref ~names ~bound
                          ~source:path ~created_at:(periods_fed_core c)
                          ?answers ~parts model
                      with
                      | Ok () -> Ec.ok
                      | Error m -> err ("store: " ^ m))
                 in
                 (match c with
                  | `Single (e, comp) ->
                    Eng.set_provenance e
                      ~dropped:(List.length q.Rt_trace.Quarantine.dropped)
                      ~repaired:(List.length q.Rt_trace.Quarantine.repaired);
                    let parts =
                      match Eng.violations e with
                      | Some v when not exact ->
                        [| (Rt_shard.Shard.summary_of
                              (Option.value comp ~default:e), v) |]
                      | Some _ | None -> [||]
                    in
                    let snap = Eng.finalize e in
                    write_sinks ~metrics ~trace_events obs;
                    let code =
                      render_model ~names ~dot ~output snap.Eng.hypotheses
                    in
                    (match snap.Eng.lub with
                     | Some model when code = Ec.ok ->
                       Ec.combine code
                         (commit ~parts ~answers:snap.Eng.hypotheses model)
                     | Some _ | None -> code)
                  | `Sharded s ->
                    (match obs with
                     | Some r ->
                       let set = Rt_obs.Registry.set_counter r in
                       set "shard.shards" (SStream.shards s);
                       set "shard.periods" (SStream.periods_fed s);
                       set "shard.messages" (SStream.messages_fed s);
                       set "shard.jobs" jobs
                     | None -> ());
                    write_sinks ~metrics ~trace_events obs;
                    let folded = SStream.fold s in
                    let code = render_folded ~names ~dot ~output folded in
                    (match folded with
                     | Some model when code = Ec.ok ->
                       Ec.combine code (commit ~parts:(SStream.parts s) model)
                     | Some _ | None -> code))
               | Some _ | None ->
                 err ("no usable periods after quarantine")))

let learn path exact auto stream shards bound window jobs dot output mode eps
    checkpoint every stop_after store store_ref flight_out metrics
    trace_events profile folded progress =
  let module Eng = Rt_engine.Engine in
  let obs =
    if metrics <> None || trace_events <> None || profile || folded <> None
    then Some (Rt_obs.Registry.create ())
    else None
  in
  (* One recorder for the run: checkpoint-corruption notices land in it,
     dumped at exit. *)
  let flight = Option.map (fun _ -> Rt_obs.Flight.create ()) flight_out in
  let dump_flight () =
    match (flight, flight_out) with
    | Some f, Some p ->
      Rt_util.Atomic_file.write p
        (Rt_obs.Json.to_string ~pretty:true (Rt_obs.Flight.to_json f));
      Printf.eprintf "wrote %s\n" p
    | _ -> ()
  in
  let write_sinks = write_sinks ~profile ?folded in
  let conflict =
    if stream && checkpoint <> None then
      Some "--stream cannot be combined with --checkpoint"
    else if stream && auto then
      Some "--auto re-feeds the trace at each bound and needs it in memory; \
            drop --stream"
    else if auto && exact then
      Some "--auto searches for a heuristic bound; drop --exact"
    else if (match shards with Some k -> k < 1 | None -> false) then
      Some "--shards must be >= 1"
    else if shards <> None && exact then
      Some "sharded learning runs the bounded heuristic; drop --exact"
    else if shards <> None && auto then
      Some "--auto searches for a heuristic bound; drop --shards"
    else if store <> None && exact then
      Some "the store interchange is the heuristic's bound-1 companion; \
            drop --exact"
    else if store <> None && auto then
      Some "--auto re-learns at several bounds; pick one bound to commit \
            with --store"
    else None
  in
  let run () =
  match conflict with
  | Some m -> err (m)
  | None ->
    let checkpoint =
      match checkpoint with
      | None -> Ok None
      | Some spec -> Result.map Option.some (Slot.of_string spec)
    in
    match checkpoint with
    | Error m -> err m
    | Ok checkpoint ->
    if stream then
      learn_stream ~exact ~shards ~bound ~window ~jobs ~obs ~mode ~eps
        ~progress ~dot ~output ~store ~store_ref ~metrics ~trace_events
        ~profile ~folded path
    else begin
      match read_trace ~mode ~eps ?window ?obs path with
      | Error m -> err (m)
      | Ok (trace, _) when Rt_trace.Trace.period_count trace = 0 ->
        err ("no usable periods after quarantine")
      | Ok (trace, q) ->
        let names = Rt_task.Task_set.names trace.task_set in
        (* Commit to the store after rendering: stdout and -o carry the
           model either way, and a store failure surfaces as an input
           error without un-printing anything. *)
        let commit ~parts ?answers model =
          match store with
          | None -> Ec.ok
          | Some dir ->
            (match
               store_commit ~store:dir ~ref_:store_ref ~names ~bound
                 ~source:path
                 ~created_at:(Rt_trace.Trace.period_count trace)
                 ?answers ~parts model
             with
             | Ok () -> Ec.ok
             | Error m -> err ("store: " ^ m))
        in
        if auto then begin
          let report, chosen =
            with_pool jobs (fun pool ->
                Rt_engine.Learner.auto ?window ?pool ?obs trace)
          in
          Format.printf "auto bound search:@.";
          List.iter (fun (s : Rt_engine.Learner.bound_step) ->
              Format.printf "  bound %d: %d hypothesis(es), lub %s, %.3fs@."
                s.bound s.hypotheses
                (if s.lub_changed then "changed" else "stable")
                s.elapsed_s)
            report.Rt_engine.Learner.trajectory;
          Format.printf "selected bound %d@." chosen;
          write_sinks ~metrics ~trace_events obs;
          render_model ~names ~dot ~output
            report.Rt_engine.Learner.hypotheses
        end
        else if shards <> None then begin
          let shards = Option.get shards in
          let render_and_commit ~parts model =
            let code = render_folded ~names ~dot ~output model in
            match model with
            | Some m when code = Ec.ok -> Ec.combine code (commit ~parts m)
            | Some _ | None -> code
          in
          match checkpoint with
          | Some ckpt ->
            (match
               run_checkpointed_sharded ~obs ~flight ~progress ~window ~bound
                 ~shards ~every ~stop_after ~ckpt trace
             with
             | Error m -> write_sinks ~metrics ~trace_events obs; err m
             | Ok None ->
               write_sinks ~metrics ~trace_events obs;
               Ec.ok  (* --stop-after: checkpoints written *)
             | Ok (Some (model, parts)) ->
               write_sinks ~metrics ~trace_events obs;
               render_and_commit ~parts model)
          | None ->
            let out =
              with_pool jobs (fun pool ->
                  Rt_shard.Shard.learn ?window ?pool ?obs ~bound ~shards trace)
            in
            Array.iteri
              (fun i (r : Rt_shard.Shard.result) ->
                 Printf.eprintf
                   "shard %d: %d periods, %d messages, %d hypotheses, %.3fs\n"
                   i r.periods r.messages
                   (List.length r.hypotheses)
                   (float_of_int r.elapsed_ns /. 1e9))
              out.shards;
            (match obs with
             | Some r -> Rt_obs.Registry.set_counter r "shard.jobs" jobs
             | None -> ());
            write_sinks ~metrics ~trace_events obs;
            render_and_commit
              ~parts:(Array.map
                        (fun (r : Rt_shard.Shard.result) ->
                           (r.summary, r.violations))
                        out.shards)
              out.model
        end
        else
          (* Single-engine tail: the answer set plus the bound-1
             companion part this process would publish to a store. *)
          let parts_of ~main ~companion =
            match Eng.violations main with
            | Some v ->
              [| (Rt_shard.Shard.summary_of
                    (Option.value companion ~default:main), v) |]
            | None -> [||]
          in
          let result =
            match checkpoint with
            | Some _ when exact ->
              Error
                "--checkpoint requires the heuristic algorithm (drop --exact)"
            | Some ckpt ->
              (match
                 with_pool jobs (fun pool ->
                     run_checkpointed ~pool ~obs ~flight ~progress ~window
                       ~bound ~every ~stop_after ~ckpt q trace)
               with
               | Error _ as e -> e
               | Ok None -> Ok None
               | Ok (Some (s, eng)) ->
                 (* The checkpointed path runs one engine; only at bound
                    1 is it its own exact companion. *)
                 let parts =
                   if bound = 1 then parts_of ~main:eng ~companion:None
                   else [||]
                 in
                 Ok (Some (s.Rt_engine.Engine.hypotheses, parts)))
            | None ->
              with_pool jobs (fun pool ->
                  let alg =
                    if exact then Eng.Exact { limit = None }
                    else Eng.Heuristic { bound }
                  in
                  let ntasks = Rt_trace.Trace.task_count trace in
                  let eng = Eng.create ?window ?pool ?obs ~ntasks alg in
                  let companion =
                    if store <> None && not exact && bound > 1 then
                      Some (Eng.create ?window ~ntasks
                              (Eng.Heuristic { bound = 1 }))
                    else None
                  in
                  Eng.set_provenance eng
                    ~dropped:(List.length q.dropped)
                    ~repaired:(List.length q.repaired);
                  let periods = Rt_trace.Trace.periods trace in
                  let total = List.length periods in
                  match
                    List.iteri (fun i p ->
                        Eng.feed eng p;
                        Option.iter (fun c -> Eng.feed c p) companion;
                        match progress with
                        | Some n when (i + 1) mod n = 0 || i + 1 = total ->
                          Printf.eprintf
                            "progress: %d/%d periods, %d hypotheses\n%!"
                            (i + 1) total (List.length (Eng.current eng))
                        | Some _ | None -> ())
                      periods
                  with
                  | () ->
                    let parts =
                      if exact then [||] else parts_of ~main:eng ~companion
                    in
                    Ok (Some ((Eng.finalize eng).Eng.hypotheses, parts))
                  | exception Rt_learn.Exact.Blowup { set_size; limit; _ } ->
                    Error (blowup_msg set_size limit))
          in
          write_sinks ~metrics ~trace_events obs;
          (match result with
           | Error m -> err (m)
           | Ok None -> Ec.ok  (* --stop-after: checkpoint written *)
           | Ok (Some (hs, parts)) ->
             let code = render_model ~names ~dot ~output hs in
             (match hs with
              | _ :: _ when code = Ec.ok ->
                Ec.combine code
                  (commit ~parts ~answers:hs (Rt_lattice.Depfun.lub hs))
              | _ -> code))
    end
  in
  let code = run () in
  dump_flight ();
  code

(* --- watch --- *)

(* Follow a (possibly growing) trace source and keep the model current:
   print the LUB whenever it changes, and call out drift — a previously
   converged answer set invalidated by new evidence. *)
let watch path bound window mode eps poll follow max_periods flight_out =
  let module Eng = Rt_engine.Engine in
  let module Df = Rt_lattice.Depfun in
  let stop = ref false in
  (* One recorder for the whole session: drift notices and the tail's
     rotation/truncation absorptions land in it, dumped at exit. *)
  let flight =
    Option.map (fun _ -> Rt_obs.Flight.create ()) flight_out
  in
  let record sev kind detail =
    match flight with
    | Some f -> Rt_obs.Flight.record f sev ~stream:path ~kind detail
    | None -> ()
  in
  let dump_flight () =
    match (flight, flight_out) with
    | Some f, Some p ->
      Rt_util.Atomic_file.write p
        (Rt_obs.Json.to_string ~pretty:true (Rt_obs.Flight.to_json f));
      Printf.eprintf "wrote %s\n" p
    | _ -> ()
  in
  let run src =
         let parser = Rt_trace.Stream_io.create ~mode ~eps src in
         let eng = ref None in
         let prev_lub = ref None in
         let was_converged = ref false in
         let result = ref (Ec.ok) in
         let finished = ref false in
         while not !finished do
           match Rt_trace.Stream_io.next parser with
           | Error e ->
             result :=
               err (Printf.sprintf "%s: line %d: %s" path e.line e.message);
             finished := true
           | Ok None -> finished := true
           | Ok (Some p) ->
             let ts = Option.get (Rt_trace.Stream_io.task_set parser) in
             let names = Rt_task.Task_set.names ts in
             let e =
               match !eng with
               | Some e -> e
               | None ->
                 let e =
                   Eng.create ?window ~ntasks:(Rt_task.Task_set.size ts)
                     (Eng.Heuristic { bound })
                 in
                 eng := Some e; e
             in
             let fed =
               if mode = `Recover then
                 match Rt_trace.Trace_io.salvage_period ?window p with
                 | `Clean -> Eng.feed e p; true
                 | `Excised (p', _) -> Eng.feed e p'; true
                 | `Dropped ->
                   Printf.eprintf
                     "period %d dropped: message with no admissible \
                      sender/receiver\n%!"
                     p.Rt_trace.Period.index;
                   false
               else (Eng.feed e p; true)
             in
             if fed then begin
               let snap = Eng.snapshot e in
               let changed =
                 match !prev_lub, snap.Eng.lub with
                 | None, None -> false
                 | Some a, Some b -> not (Df.equal a b)
                 | Some _, None | None, Some _ -> true
               in
               if changed then begin
                 if !was_converged then begin
                   record Rt_obs.Flight.Warn "watch.drift"
                     (Printf.sprintf
                        "previously converged model invalidated at period %d"
                        snap.Eng.periods);
                   Format.printf
                     "drift: previously converged model invalidated at \
                      period %d@."
                     snap.Eng.periods
                 end;
                 Format.printf "period %d: %d hypothesis(es)%s@."
                   snap.Eng.periods
                   (List.length snap.Eng.hypotheses)
                   (if snap.Eng.converged then ", converged" else "");
                 (match snap.Eng.lub with
                  | Some lub -> Format.printf "%s@." (Df.to_string ~names lub)
                  | None ->
                    Format.printf "inconsistent trace: empty answer set@.")
               end;
               prev_lub := snap.Eng.lub;
               was_converged := snap.Eng.converged;
               Format.print_flush ()
             end;
             (match max_periods with
              | Some k
                when (match !eng with
                      | Some e -> Eng.periods_fed e >= k
                      | None -> false) ->
                stop := true;
                finished := true
              | Some _ | None -> ())
         done;
         !result
  in
  let code =
    if follow && path <> "-" then
      (* Path-tracking follower: survives log rotation (rename + recreate)
         and copytruncate shrinks, and waits for a not-yet-created file
         instead of failing — a watch session outlives the logger's
         housekeeping. *)
      run
        (Rt_trace.Stream_io.follow_path ~poll_interval:poll
           ~on_event:(fun ev ->
             match ev with
             | Rt_trace.Stream_io.Tail.Rotated ->
               record Rt_obs.Flight.Warn "tail.rotated"
                 "followed file replaced; continuing on the new file"
             | Rt_trace.Stream_io.Tail.Truncated ->
               record Rt_obs.Flight.Warn "tail.truncated"
                 "followed file shrank; continuing from the new end"
             | Rt_trace.Stream_io.Tail.Opened ->
               record Rt_obs.Flight.Info "tail.opened" "followed file opened"
             | _ -> ())
           ~stop:(fun () -> !stop) path)
    else
      match (if path = "-" then Ok stdin
             else try Ok (open_in path) with Sys_error m -> Error m)
      with
      | Error m -> err (m)
      | Ok ic ->
        Fun.protect ~finally:(fun () -> if path <> "-" then close_in_noerr ic)
          (fun () ->
             run
               (if follow then
                  Rt_trace.Stream_io.follow_lines ~poll_interval:poll
                    ~stop:(fun () -> !stop) ic
                else Rt_trace.Stream_io.lines_of_channel ic))
  in
  dump_flight ();
  code

(* --- analyze --- *)

let analyze path bound window jobs mode eps =
  match read_trace ~mode ~eps ?window path with
  | Error m -> err (m)
  | Ok (trace, _) when Rt_trace.Trace.period_count trace = 0 ->
    err ("no usable periods after quarantine")
  | Ok (trace, q) ->
    let names = Rt_task.Task_set.names trace.task_set in
    if mode = `Recover then begin
      Format.printf "== ingestion ==@.%s@." (Rt_trace.Quarantine.summary q);
      let c = Rt_trace.Quarantine.confidence q in
      if c < 1.0 then
        Format.printf
          "warning: model evidence degraded to %.0f%% — %d period(s) \
           repaired, %d dropped@."
          (100.0 *. c) (List.length q.repaired) (List.length q.dropped)
    end;
    (match
       with_pool jobs (fun pool ->
           (Rt_learn.Heuristic.run ?pool ?window ~bound trace).hypotheses)
     with
     | [] -> err ("inconsistent trace")
     | hs ->
       let model = Rt_lattice.Depfun.lub hs in
       Format.printf "== dependency relations ==@.%s@."
         (Rt_analysis.Dep_graph.summary ~names model);
       Format.printf "== node classification ==@.";
       List.iter (fun info ->
           Format.printf "%a@." (Rt_analysis.Classify.pp_info ~names) info)
         (Rt_analysis.Classify.classify model);
       let n = Rt_lattice.Depfun.size model in
       if n <= 24 then
         Format.printf "== state space ==@.%d of %d period outcomes consistent (%.1fx reduction)@."
           (Rt_analysis.Reachability.count_consistent model)
           (Rt_analysis.Reachability.total_states n)
           (Rt_analysis.Reachability.reduction model);
       Format.printf "== operation modes ==@.";
       List.iter (fun cls ->
           if List.length cls > 1 then
             Format.printf "always together: {%s}@."
               (String.concat " " (List.map (fun i -> names.(i)) cls)))
         (Rt_analysis.Modes.co_execution_classes model);
       List.iter (fun (a, b) ->
           Format.printf "mutually exclusive: %s vs %s@." names.(a) names.(b))
         (Rt_analysis.Modes.exclusive_pairs trace);
       Ec.ok)

(* --- stats / vcd --- *)

let stats path recover eps =
  let mode = if recover then `Recover else `Strict in
  match read_trace ~mode ~eps ~quiet:true path with
  | Error m -> err (m)
  | Ok (trace, q) ->
    print_endline (Rt_trace.Stats.to_string trace);
    (* With --recover the quarantine account is part of the statistics,
       so it goes to stdout, unlike the learn/analyze stderr summary. *)
    if recover then begin
      print_endline "== quarantine ==";
      print_endline (Rt_trace.Quarantine.summary q);
      Printf.printf "confidence: %.0f%%\n"
        (100.0 *. Rt_trace.Quarantine.confidence q)
    end;
    Ec.ok

(* --- report --- *)

let render_metrics ~source content =
  match Rt_obs.Json.of_string content with
  | Error m -> err (Printf.sprintf "%s: %s" source m)
  | Ok json ->
    (match Rt_obs.Report.render json with
     | Error m -> err (Printf.sprintf "%s: %s" source m)
     | Ok rendered -> print_string rendered; Ec.ok)

(* One request/response exchange against a live daemon's control
   socket (the rtgend protocol: request line in, response until EOF). *)
let control_roundtrip sock req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.connect fd (Unix.ADDR_UNIX sock);
       let msg = Bytes.of_string (req ^ "\n") in
       let rec send off =
         if off < Bytes.length msg then
           send (off + Unix.write fd msg off (Bytes.length msg - off))
       in
       send 0;
       let buf = Buffer.create 4096 in
       let chunk = Bytes.create 4096 in
       let rec drain () =
         match Unix.read fd chunk 0 4096 with
         | 0 -> ()
         | n ->
           Buffer.add_subbytes buf chunk 0 n;
           drain ()
       in
       drain ();
       Buffer.contents buf)

let render_prometheus ~source content =
  match Rt_obs.Json.of_string content with
  | Error m -> err (Printf.sprintf "%s: %s" source m)
  | Ok json ->
    (match Rt_obs.Prom.render json with
     | Error m -> err (Printf.sprintf "%s: %s" source m)
     | Ok rendered -> print_string rendered; Ec.ok)

let report path socket query prometheus =
  if prometheus && query <> "metrics" then
    err ("--prometheus already implies a query; drop --query")
  else
    match socket with
    | Some sock ->
      let query = if prometheus then "prometheus" else query in
      (match control_roundtrip sock query with
       | exception Unix.Unix_error (e, _, _) ->
         err (Printf.sprintf "%s: %s" sock (Unix.error_message e))
       | resp ->
         if query = "metrics" then render_metrics ~source:sock resp
         else begin
           print_string resp;
           if String.length resp >= 6 && String.sub resp 0 6 = "error:" then
             err ("daemon refused the request")
           else Ec.ok
         end)
    | None ->
      (match path with
       | None -> err ("need a METRICS file argument or --socket PATH")
       | Some path ->
         (match
            let ic = open_in_bin path in
            Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
                really_input_string ic (in_channel_length ic))
          with
          | exception Sys_error m -> err (m)
          | content ->
            if prometheus then render_prometheus ~source:path content
            else render_metrics ~source:path content))

(* --- top --- *)

(* Live fleet telemetry: poll the daemon's status over the control
   socket and redraw a compact per-stream table. Plain ANSI clear — no
   terminal library — so it works in CI logs (--no-clear) too. *)
let top socket interval count no_clear =
  let kv_of tokens =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
          Some
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) )
        | None -> None)
      tokens
  in
  let field kvs key = Option.value ~default:"-" (List.assoc_opt key kvs) in
  let render resp =
    let lines = String.split_on_char '\n' resp in
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "%-16s %-11s %9s %6s %9s %6s %5s %9s\n" "STREAM" "PHASE"
         "PERIODS" "HYPS" "RESTARTS" "QUEUE" "SHED" "CKPT-AGE");
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | "stream" :: id :: rest ->
          let kvs = kv_of rest in
          Buffer.add_string b
            (Printf.sprintf "%-16s %-11s %9s %6s %9s %6s %5s %9s\n" id
               (field kvs "phase") (field kvs "periods")
               (field kvs "hypotheses") (field kvs "restarts")
               (field kvs "queue") (field kvs "shed") (field kvs "ckpt_age"))
        | "totals" :: rest ->
          let kvs = kv_of rest in
          Buffer.add_string b
            (Printf.sprintf
               "\n\
                totals: %s accepted, %s active, %s finalized, %s failed, %s \
                shed, %s busy, %s restarts, %s periods\n"
               (field kvs "accepted") (field kvs "active")
               (field kvs "finalized") (field kvs "failed") (field kvs "shed")
               (field kvs "busy") (field kvs "restarts") (field kvs "periods"))
        | _ -> ())
      lines;
    Buffer.contents b
  in
  let rec loop remaining =
    match control_roundtrip socket "status" with
    | exception Unix.Unix_error (e, _, _) ->
      err (Printf.sprintf "%s: %s" socket (Unix.error_message e))
    | resp ->
      if String.length resp >= 6 && String.sub resp 0 6 = "error:" then begin
        print_string resp;
        err ("daemon refused the request")
      end
      else begin
        if not no_clear then print_string "\027[2J\027[H";
        print_string (render resp);
        flush stdout;
        match remaining with
        | Some n when n <= 1 -> Ec.ok
        | _ ->
          Unix.sleepf interval;
          loop (Option.map (fun n -> n - 1) remaining)
      end
  in
  loop count

(* --- serve --- *)

let serve spool listen control out_dir checkpoint_dir store checkpoint_every
    bound window eps jobs max_streams queue_capacity tick max_restarts backoff
    backoff_cap stall_timeout idle_timeout metrics flight flight_capacity
    stop_after_total drain_after_total =
  let policy =
    {
      Rt_daemon.Supervisor.max_restarts;
      backoff_base = backoff;
      backoff_factor = 2.0;
      backoff_cap;
      stall_timeout;
      idle_timeout =
        (match idle_timeout with Some s -> s | None -> infinity);
    }
  in
  let cfg =
    {
      Rt_daemon.Daemon.default with
      spool;
      listen;
      control;
      out_dir;
      checkpoint_dir;
      store;
      checkpoint_every;
      bound;
      window;
      eps = Some eps;
      jobs;
      max_streams;
      queue_capacity;
      tick;
      policy;
      metrics_path = metrics;
      flight_capacity;
      flight_path = flight;
      stop_after_total;
      drain_after_total;
    }
  in
  match Rt_daemon.Daemon.run cfg with
  | Ok _ -> Ec.ok
  | Error m -> err (m)

let vcd path import period_len output =
  if import then
    match Rt_trace.Vcd.load ?period_len path with
    | Error (e : Rt_trace.Vcd.parse_error) ->
      err (Printf.sprintf "%s: line %d: %s" path e.line e.message)
    | exception Sys_error m -> err (m)
    | Ok (trace, used_len) ->
      (match output with
       | None -> print_string (Rt_trace.Trace_io.to_string trace)
       | Some file ->
         Rt_trace.Trace_io.save file trace;
         Printf.eprintf "wrote %s (period length %dus)\n" file used_len);
      Ec.ok
  else
    match read_trace path with
    | Error m -> err (m)
    | Ok (trace, _) ->
      (match output with
       | None -> print_string (Rt_trace.Vcd.to_string ?period_len trace)
       | Some file -> Rt_trace.Vcd.save ?period_len file trace);
      Ec.ok

(* --- inject --- *)

let inject path kinds rate eps seed torn_at output =
  match read_trace path with
  | Error m -> err (m)
  | Ok (trace, _) ->
    if rate < 0.0 || rate > 1.0 then
      err ("--rate must be in [0, 1]")
    else if (match torn_at with Some n -> n < 0 | None -> false) then
      err ("--torn-at must be a non-negative byte offset")
    else begin
      let spec = { Rt_trace.Corrupt.kinds; rate; eps; seed } in
      let raw = Rt_trace.Corrupt.apply spec trace in
      match torn_at with
      | Some at ->
        (* torn-write mode: cut the rendered trace mid-line/mid-frame,
           emulating a writer killed with a partially flushed buffer *)
        let torn = Rt_trace.Corrupt.torn_write ~at (Rt_trace.Corrupt.to_string raw) in
        (match output with
         | None -> print_string torn
         | Some file ->
           Rt_util.Atomic_file.write file torn;
           Printf.eprintf "wrote %s (torn at byte %d of %d)\n" file
             (String.length torn)
             (String.length (Rt_trace.Corrupt.to_string raw)));
        Ec.ok
      | None ->
        (match output with
         | None -> print_string (Rt_trace.Corrupt.to_string raw)
         | Some file ->
           Rt_trace.Corrupt.save file raw;
           Printf.eprintf "wrote %s (%d periods corrupted with seed %d)\n"
             file (List.length raw.raw_periods) seed);
        Ec.ok
    end

(* --- anonymize --- *)

let anonymize path output =
  match read_trace path with
  | Error m -> err (m)
  | Ok (trace, _) ->
    let anon, mapping = Rt_trace.Anonymize.anonymize trace in
    (match output with
     | None -> print_string (Rt_trace.Trace_io.to_string anon)
     | Some file ->
       Rt_trace.Trace_io.save file anon;
       Printf.eprintf "wrote %s\n" file);
    List.iter (fun (original, hidden) ->
        Printf.eprintf "%s -> %s\n" original hidden)
      mapping.Rt_trace.Anonymize.task_names;
    Ec.ok

(* --- gantt --- *)

let gantt path period output =
  match read_trace path with
  | Error m -> err (m)
  | Ok (trace, _) ->
    (match List.nth_opt (Rt_trace.Trace.periods trace) period with
     | None -> err (Printf.sprintf "no period %d in the trace" period)
     | Some pd ->
       (match output with
        | None -> print_string (Rt_trace.Gantt.to_svg pd)
        | Some file -> Rt_trace.Gantt.save file pd);
       Ec.ok)

(* --- query (was `check` before the model auditor took that name) --- *)

let run_query path query bound window jobs model_file =
  match read_trace path with
  | Error m -> err (m)
  | Ok (trace, _) ->
    (match Rt_analysis.Query.parse query with
     | Error m -> err ("query: " ^ m)
     | Ok q ->
       let model_result =
         match model_file with
         | Some file ->
           (* Reuse a model saved by `learn -o` — or committed to a
              store ([DIR//ref@N]) — instead of re-learning. *)
           (match Store.split_address file with
            | Some (dir, spec) ->
              (match
                 Result.bind (resolve_blob dir spec) (fun (_, blob) ->
                     Codec.model_of_blob blob)
               with
               | Ok (model, names) -> Ok (model, names)
               | Error m -> Error (file ^ ": " ^ m))
            | None ->
              (try
                 let ic = open_in file in
                 let content =
                   Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
                       really_input_string ic (in_channel_length ic))
                 in
                 match Rt_lattice.Depfun.parse content with
                 | Ok (model, names) -> Ok (model, names)
                 | Error m -> Error (file ^ ": " ^ m)
               with Sys_error m -> Error m))
         | None ->
           (match
              with_pool jobs (fun pool ->
                  (Rt_learn.Heuristic.run ?pool ?window ~bound trace).hypotheses)
            with
            | [] -> Error "inconsistent trace"
            | hs ->
              Ok (Rt_lattice.Depfun.lub hs,
                  Rt_task.Task_set.names trace.task_set))
       in
       (match model_result with
        | Error m -> err (m)
        | Ok (model, names) ->
          (match Rt_analysis.Query.eval ~model ~names ~trace q with
           | Error m -> err (m)
           | Ok verdicts ->
             let all = List.for_all (fun v -> v.Rt_analysis.Query.holds) verdicts in
             List.iter (fun (v : Rt_analysis.Query.verdict) ->
                 Format.printf "%s  %s  (%s)@."
                   (if v.holds then "[ok]  " else "[FAIL]")
                   (Rt_analysis.Query.clause_to_string v.clause)
                   v.detail)
               verdicts;
             if all then Ec.ok
             else begin
               prerr_endline "rtgen: property violated";
               Ec.findings
             end)))

(* --- check: static audit of learned artifacts --- *)

(* A MODEL argument is a file saved by `learn -o`, or a store address
   [DIR//ref[@N]] naming a model, companion or answer-set blob (an
   answer set expands into one model per member). *)
let load_model_spec path =
  let module Mc = Rt_check.Model_check in
  match Store.split_address path with
  | None -> Result.map (fun m -> [ m ]) (Mc.load_model path)
  | Some (dir, spec) ->
    let ( let* ) = Result.bind in
    let* _, blob = resolve_blob dir spec in
    (match Codec.kind_of_blob blob with
     | Some Store.Model ->
       let* d, names = Codec.model_of_blob blob in
       Ok [ Mc.model_of_depfun ~source:path ~names d ]
     | Some Store.Companion ->
       let* decoded = Codec.companion_of_blob blob in
       let d, _, names = decoded in
       Ok [ Mc.model_of_depfun ~source:path ~names d ]
     | Some Store.Answerset ->
       let* ms = Codec.answerset_of_blob blob in
       Ok
         (List.mapi
            (fun i (d, names) ->
               Mc.model_of_depfun
                 ~source:(Printf.sprintf "%s#%d" path i) ~names d)
            ms)
     | Some Store.Checkpoint ->
       Error (path ^ ": checkpoint blob; audit it with --checkpoint")
     | None -> Error (path ^ ": unrecognized blob format"))

let model_check models ckpt trace_file format output strict =
  let module Mc = Rt_check.Model_check in
  let module F = Rt_check.Finding in
  if models = [] && ckpt = None then
    err "nothing to check: give MODEL files and/or --checkpoint"
  else begin
    let input_errors = ref [] in
    let bad_input m = input_errors := m :: !input_errors in
    let loaded =
      List.concat_map (fun path ->
          match load_model_spec path with
          | Ok ms -> ms
          | Error m -> bad_input m; [])
        models
    in
    (* The lattice-law self-check is cheap (7^3 triples) and silent on a
       healthy build, so every audit includes it. *)
    let findings = ref (Mc.check_laws ()) in
    let add fs = findings := !findings @ fs in
    List.iter (fun m -> add (Mc.check_model m)) loaded;
    if List.length loaded > 1 then add (Mc.check_answer_set loaded);
    (match trace_file with
     | None -> ()
     | Some tf ->
       (match read_trace ~quiet:true tf with
        | Error m -> bad_input m
        | Ok (trace, _) ->
          List.iter (fun m -> add (Mc.check_against_trace m trace)) loaded));
    (match ckpt with
     | None -> ()
     | Some path ->
       let data =
         match Store.split_address path with
         | None ->
           (match read_file path with
            | data -> Ok data
            | exception Sys_error m -> Error m)
         | Some (dir, spec) ->
           Result.map snd (resolve_blob dir spec)
       in
       (match data with
        | Error m -> bad_input m
        | Ok data ->
          (match Mc.check_checkpoint ~source:path data with
           | Ok fs -> add fs
           | Error (m, f) -> bad_input m; add [ f ])));
    let fs =
      if strict then
        List.map (fun (f : F.t) ->
            if f.severity = F.Warning then { f with severity = F.Error }
            else f)
          !findings
      else !findings
    in
    print_string (F.render ~tool:"rtgen check" ~format fs);
    Option.iter (fun file ->
        Rt_util.Atomic_file.write file
          (F.render ~tool:"rtgen check" ~format:F.Sarif fs);
        Printf.eprintf "wrote %s\n" file)
      output;
    match List.rev !input_errors with
    | [] -> F.exit_code fs
    | es ->
      List.iter (fun m -> ignore (err m)) es;
      Ec.combine Ec.input_error (F.exit_code fs)
  end

(* --- merge: the cross-process half of sharding --- *)

(* Fold the bound-1 companion parts published in K stores into one
   fleet model. Each store contributes the latest generation of every
   Companion-kind ref (narrowed to REF/b1* by --ref); the fold is the
   same exchange law as --shards, so over stores produced from a
   partition of one trace's periods the result is byte-equal to the
   monolithic bound-1 model, whatever the partition shape. *)
let merge stores ref_filter dot output out_store out_ref =
  let ( let* ) = Result.bind in
  let collect dir =
    let* s = Store.open_ dir in
    let keep r =
      match ref_filter with
      | None -> true
      | Some base ->
        let p = base ^ "/b1" in
        r = p
        || (String.length r > String.length p + 1
            && String.sub r 0 (String.length p + 1) = p ^ "/")
    in
    List.fold_left
      (fun acc r ->
         let* acc = acc in
         let* e = Store.resolve s r in
         if e.Store.meta.Store.kind <> Store.Companion then Ok acc
         else
           let* blob = Store.read_blob s e.Store.address in
           let* decoded = Codec.companion_of_blob blob in
           let summary, violations, names = decoded in
           Ok
             ((Printf.sprintf "%s//%s@%d" dir r e.Store.gen,
               e.Store.address, e.Store.meta.Store.created_at,
               summary, violations, names)
              :: acc))
      (Ok [])
      (List.filter keep (Store.refs s))
    |> Result.map List.rev
  in
  match
    List.fold_left
      (fun acc dir ->
         let* acc = acc in
         let* ps = collect dir in
         Ok (acc @ ps))
      (Ok []) stores
  with
  | Error m -> err m
  | Ok [] -> err "no companion parts found in the given store(s)"
  | Ok ((_, _, _, _, _, names) :: _ as all) ->
    if List.exists (fun (_, _, _, _, _, ns) -> ns <> names) all then
      err "the stores' companion parts disagree on the task set"
    else begin
      List.iter
        (fun (label, _, created, _, _, _) ->
           Printf.eprintf "merging %s (%d periods)\n" label created)
        all;
      let parts =
        Array.of_list (List.map (fun (_, _, _, s, v, _) -> (Some s, v)) all)
      in
      match Rt_shard.Shard.fold_summaries parts with
      | None -> err inconsistent_msg
      | Some model ->
        if not dot then
          Format.printf "fleet model (%d part(s) from %d store(s)):@."
            (Array.length parts) (List.length stores);
        let code = output_model ~names ~dot ~output model in
        match out_store with
        | Some dir when code = Ec.ok ->
          (match
             let* s = Store.init dir in
             let meta =
               { Store.kind = Store.Model; bound = Some 1;
                 source = Some "merge";
                 parents = List.map (fun (_, a, _, _, _, _) -> a) all;
                 created_at =
                   List.fold_left (fun a (_, _, c, _, _, _) -> a + c) 0 all }
             in
             let* e =
               Store.commit s ~ref_:out_ref ~meta
                 (Codec.model_to_blob ~names model)
             in
             Printf.eprintf "stored %s//%s@%d %s\n" (Store.root s) out_ref
               e.Store.gen e.Store.address;
             Ok ()
           with
           | Ok () -> code
           | Error m -> err ("store: " ^ m))
        | Some _ | None -> code
    end

(* --- store: plumbing over the content-addressed store --- *)

let entry_line (e : Store.entry) =
  let m = e.Store.meta in
  Printf.sprintf "gen %d %s kind=%s created=%d%s%s%s" e.Store.gen
    e.Store.address
    (Store.kind_to_string m.Store.kind)
    m.Store.created_at
    (match m.Store.bound with
     | Some b -> Printf.sprintf " bound=%d" b
     | None -> "")
    (match m.Store.parents with
     | [] -> ""
     | ps -> " parents=" ^ String.concat "," ps)
    (match m.Store.source with Some s -> " source=" ^ s | None -> "")

let cmd_store_init dir =
  match Store.init dir with
  | Ok s -> Printf.eprintf "initialized %s\n" (Store.root s); Ec.ok
  | Error m -> err m

let cmd_store_refs dir =
  match Store.open_ dir with
  | Error m -> err m
  | Ok s ->
    let bad = ref None in
    List.iter
      (fun r ->
         match Store.resolve s r with
         | Ok e ->
           Format.printf "%s @%d %s %s@." r e.Store.gen e.Store.address
             (Store.kind_to_string e.Store.meta.Store.kind)
         | Error m -> if !bad = None then bad := Some m)
      (Store.refs s);
    (match !bad with Some m -> err m | None -> Ec.ok)

let cmd_store_log dir ref_ =
  match Store.open_ dir with
  | Error m -> err m
  | Ok s ->
    (match Store.generations s ref_ with
     | Error m -> err m
     | Ok entries ->
       List.iter (fun e -> print_endline (entry_line e)) entries;
       Ec.ok)

let cmd_store_cat address dot output =
  match Store.split_address address with
  | None -> err "ADDRESS must have the form DIR//ref[@N|@latest]"
  | Some (dir, spec) ->
    (match resolve_blob dir spec with
     | Error m -> err m
     | Ok (_, blob) ->
       if dot then
         (* Model blobs render through the same dependency-graph
            exporter as `learn --dot`. *)
         match Codec.model_of_blob blob with
         | Error m -> err (address ^ ": " ^ m)
         | Ok (d, names) ->
           print_string (Rt_analysis.Dep_graph.to_dot ~names d);
           Ec.ok
       else begin
         (match output with
          | Some file ->
            Rt_util.Atomic_file.write file blob;
            Printf.eprintf "wrote %s\n" file
          | None -> print_string blob);
         Ec.ok
       end)

let cmd_store_put dir ref_ file =
  match
    let ( let* ) = Result.bind in
    let* data =
      try Ok (read_file file) with Sys_error m -> Error m
    in
    let* s = Store.init dir in
    let kind =
      Option.value (Codec.kind_of_blob data) ~default:Store.Checkpoint
    in
    let meta =
      { Store.kind; bound = None; source = Some file; parents = [];
        created_at = 0 }
    in
    Store.commit s ~ref_ ~meta data
  with
  | Error m -> err m
  | Ok e ->
    Printf.printf "%s@%d %s\n" ref_ e.Store.gen e.Store.address;
    Ec.ok

let cmd_store_gc dir =
  match Store.open_ dir with
  | Error m -> err m
  | Ok s ->
    (match Store.gc s with
     | Error m -> err m
     | Ok (kept, deleted) ->
       Printf.printf "kept %d blob(s), deleted %d\n" kept deleted;
       Ec.ok)

(* --- table1 --- *)

let table1 fast jobs =
  let trace = Rt_case.Gm_model.trace () in
  Format.printf "%a@." Rt_trace.Trace.pp_summary trace;
  let bounds = if fast then [ 1; 4; 16 ] else [ 1; 4; 16; 32; 64; 100; 120; 150 ] in
  let rows =
    with_pool jobs (fun pool ->
        List.map (fun bound ->
            let t0 = Rt_obs.Registry.now_ns () in
            let o = Rt_learn.Heuristic.run ?pool ~bound trace in
            let dt = float_of_int (Rt_obs.Registry.now_ns () - t0) /. 1e9 in
            [ string_of_int bound; Printf.sprintf "%.3f" dt;
              string_of_int (List.length o.hypotheses) ])
          bounds)
  in
  print_string
    (Rt_util.Table.render
       ~aligns:[ Rt_util.Table.Right; Rt_util.Table.Right; Rt_util.Table.Right ]
       ~header:[ "bound"; "run time (s)"; "|D*|" ]
       rows);
  Ec.ok

(* --- example --- *)

let example () =
  let trace = Rt_case.Paper_example.trace () in
  let o = Rt_learn.Exact.run trace in
  Format.printf "worked example (paper sec. 3.3): %d most specific hypotheses@."
    (List.length o.hypotheses);
  Format.printf "dLUB:@.%s@."
    (Rt_lattice.Depfun.to_string (Rt_lattice.Depfun.lub o.hypotheses));
  Ec.ok

(* --- cmdliner wiring --- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let periods_arg =
  Arg.(value & opt int 27 & info [ "periods" ] ~docv:"N" ~doc:"Periods to simulate.")

let bound_arg =
  Arg.(value & opt int 16 & info [ "bound"; "b" ] ~docv:"B"
         ~doc:"Hypothesis-set bound for the heuristic algorithm.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the hypothesis fan-out (1 = sequential; \
               results are identical for every N).")

let window_arg =
  Arg.(value & opt (some int) None & info [ "window" ] ~docv:"US"
         ~doc:"Candidate window in microseconds (narrows sender/receiver \
               inference).")

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit a Graphviz graph instead of text.")

let trace_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
         ~doc:"Trace file in the rtgen-trace format.")

(* Streaming commands also accept "-" for stdin, which `some file` would
   reject; existence of real paths is checked at open time instead. *)
let stream_trace_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE"
         ~doc:"Trace file in the rtgen-trace format, or $(b,-) for stdin.")

let mode_arg =
  let mode_conv = Arg.enum [ ("strict", `Strict); ("recover", `Recover) ] in
  Arg.(value & opt mode_conv `Strict & info [ "mode" ] ~docv:"MODE"
         ~doc:"Ingestion mode: $(b,strict) rejects the first malformed line \
               or period; $(b,recover) repairs or quarantines damage and \
               reports it on stderr.")

let eps_arg =
  Arg.(value & opt int 0 & info [ "eps" ] ~docv:"US"
         ~doc:"Clock-skew tolerance for recover-mode repairs, in \
               microseconds.")

let format_arg =
  let fmt_conv =
    Arg.enum
      [ ("text", Rt_check.Finding.Text);
        ("json", Rt_check.Finding.Json_format);
        ("sarif", Rt_check.Finding.Sarif) ]
  in
  Arg.(value & opt fmt_conv Rt_check.Finding.Text & info [ "format" ] ~docv:"FMT"
         ~doc:"Findings format: $(b,text), $(b,json) or $(b,sarif).")

let findings_out_arg =
  Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE"
         ~doc:"Additionally write a SARIF 2.1.0 report to FILE (for code \
               scanning upload), independent of $(b,--format).")

let simulate_cmd =
  let case_study =
    Arg.(value & flag & info [ "case-study" ]
           ~doc:"Use the built-in 18-task GM-like controller.")
  in
  let tasks =
    Arg.(value & opt int 12 & info [ "tasks" ] ~docv:"N"
           ~doc:"Number of tasks for a random design.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the trace to FILE instead of stdout.")
  in
  let drop_rate =
    Arg.(value & opt float 0.0 & info [ "drop-rate" ] ~docv:"P"
           ~doc:"Fault injection: probability that a frame is missing from \
                 the log.")
  in
  let local_fraction =
    Arg.(value & opt float 0.0 & info [ "local-fraction" ] ~docv:"P"
           ~doc:"Fraction of edges delivered ECU-internally (random designs \
                 only; such messages never reach the bus log).")
  in
  let jitter_spike_rate =
    Arg.(value & opt float 0.0 & info [ "jitter-spike-rate" ] ~docv:"P"
           ~doc:"Fault injection: probability that a source release draws \
                 a spiked (4x) jitter bound.")
  in
  let glitch_rate =
    Arg.(value & opt float 0.0 & info [ "glitch-rate" ] ~docv:"P"
           ~doc:"Fault injection: expected spurious bus glitches per \
                 period, logged under high CAN ids.")
  in
  let fleet =
    Arg.(value & opt (some int) None & info [ "fleet" ] ~docv:"N"
           ~doc:"Simulate N vehicles (seeds SEED..SEED+N-1) and write one \
                 trace per vehicle into $(b,--spool).")
  in
  let spool =
    Arg.(value & opt (some string) None & info [ "spool" ] ~docv:"DIR"
           ~doc:"Directory receiving the fleet's vehicleNN.trace files \
                 (created if missing) — point $(b,rtgen serve --spool) at \
                 it.")
  in
  let trickle_lines =
    Arg.(value & opt (some int) None & info [ "trickle-lines" ] ~docv:"K"
           ~doc:"Grow the fleet files round-robin, K lines per file per \
                 sweep with a flush in between, instead of writing them \
                 at once — live loggers for a daemon to follow.")
  in
  let trickle_sleep =
    Arg.(value & opt float 0.01 & info [ "trickle-sleep" ] ~docv:"SEC"
           ~doc:"Pause between trickle sweeps.")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate a system and log its bus trace")
    Term.((const simulate $ case_study $ tasks $ seed_arg $ periods_arg
               $ output $ dot_arg $ drop_rate $ local_fraction
               $ jitter_spike_rate $ glitch_rate $ fleet $ spool
               $ trickle_lines $ trickle_sleep))

let learn_cmd =
  let exact =
    Arg.(value & flag & info [ "exact" ]
           ~doc:"Use the precise exponential algorithm instead of the \
                 bounded heuristic.")
  in
  let auto =
    Arg.(value & flag & info [ "auto" ]
           ~doc:"Pick the heuristic bound automatically: double it until \
                 the least upper bound stops changing, and print the \
                 per-bound trajectory.")
  in
  let stream =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Incremental ingestion: parse, salvage and learn one \
                 period at a time without materializing the trace. Reads \
                 TRACE or stdin ($(b,-)); memory stays bounded by a \
                 single period.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Also save the learned model (matrix text) to FILE.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"SLOT"
           ~doc:"Snapshot the learner state to SLOT every $(b,--every) \
                 periods: a plain FILE (written atomically) or a store \
                 ref $(b,DIR//ref) (one generation per snapshot). If the \
                 slot exists and matches the trace, resume from it. \
                 Removed on successful completion.")
  in
  let every =
    Arg.(value & opt int 1 & info [ "every" ] ~docv:"N"
           ~doc:"Checkpoint every N periods (default 1).")
  in
  let stop_after =
    (* Deterministic kill emulation for the test suite; hidden from help. *)
    Arg.(value & opt (some int) None
         & info [ "stop-after" ] ~docv:"K" ~docs:Manpage.s_none
             ~doc:"Stop after processing K periods (testing aid).")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write run metrics (counters, gauges, histograms, span \
                 aggregates) to FILE as JSON; render with $(b,rtgen \
                 report).")
  in
  let trace_events =
    Arg.(value & opt (some string) None & info [ "trace-events" ] ~docv:"FILE"
           ~doc:"Write the run's spans to FILE in Chrome trace_event \
                 format (load in chrome://tracing or Perfetto).")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Self-profile the run: print an exclusive/inclusive \
                 hotspot table over the learner's span tree on stderr. \
                 The learned model is unchanged.")
  in
  let folded =
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE"
           ~doc:"Write the span tree as folded stacks (one \
                 $(i,path exclusive_ns) line per call path) to FILE — \
                 feed to flamegraph.pl, speedscope or inferno.")
  in
  let store =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Also commit the result to the content-addressed model \
                 store at DIR (created on demand): the model under \
                 $(b,--ref), its pre-weaken bound-1 companion under \
                 REF/b1 (the fleet-merge interchange consumed by \
                 $(b,rtgen merge)), and the answer set under \
                 REF/answers.")
  in
  let store_ref =
    Arg.(value & opt string "model" & info [ "ref" ] ~docv:"REF"
           ~doc:"Ref name the store commit lands under (default \
                 $(b,model)); each run appends a new generation.")
  in
  let flight =
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE"
           ~doc:"Record recovery events (checkpoint corruption fallbacks) \
                 in a flight recorder and dump it (rtgen-flight JSON) to \
                 FILE at exit.")
  in
  let progress =
    Arg.(value & opt (some int) None & info [ "progress" ] ~docv:"N"
           ~doc:"Report progress on stderr every N periods (heuristic \
                 algorithm only).")
  in
  let shards =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"K"
           ~doc:"Partition the trace into K period ranges, learn each \
                 with a private engine (in parallel with $(b,-j)) and \
                 fold the per-shard results into one model — byte-equal \
                 for every K. Composes with $(b,--stream) (round-robin \
                 shard units) and $(b,--checkpoint) (sequential shards, \
                 one checkpoint pair per shard).")
  in
  Cmd.v (Cmd.info "learn" ~doc:"Learn a dependency model from a trace")
    Term.((const learn $ stream_trace_arg $ exact $ auto $ stream $ shards
               $ bound_arg $ window_arg $ jobs_arg $ dot_arg $ output
               $ mode_arg $ eps_arg $ checkpoint $ every $ stop_after
               $ store $ store_ref $ flight
               $ metrics $ trace_events $ profile $ folded $ progress))

let watch_cmd =
  let poll =
    Arg.(value & opt float 0.05 & info [ "poll" ] ~docv:"SECONDS"
           ~doc:"How often to re-check a followed file for new data.")
  in
  let follow =
    Arg.(value & flag & info [ "f"; "follow" ]
           ~doc:"Keep watching after end of file, like $(b,tail -f): new \
                 periods appended to TRACE are learned as they arrive.")
  in
  let max_periods =
    Arg.(value & opt (some int) None & info [ "max-periods" ] ~docv:"N"
           ~doc:"Stop after learning N periods (mainly for scripting a \
                 bounded watch over a live source).")
  in
  let flight =
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE"
           ~doc:"Record drift notices and follower rotation/truncation \
                 events in a flight recorder and dump it (rtgen-flight \
                 JSON) to FILE at exit.")
  in
  Cmd.v (Cmd.info "watch"
           ~doc:"Follow a trace source and print the model as it evolves \
                 (LUB on change, drift notices)")
    Term.((const watch $ stream_trace_arg $ bound_arg $ window_arg
               $ mode_arg $ eps_arg $ poll $ follow $ max_periods $ flight))

let analyze_cmd =
  Cmd.v (Cmd.info "analyze"
           ~doc:"Learn and analyze: classification, state space, modes")
    Term.((const analyze $ trace_arg $ bound_arg $ window_arg $ jobs_arg
               $ mode_arg $ eps_arg))

let inject_cmd =
  let kinds =
    let kind_conv =
      Arg.conv
        ( (fun s ->
              match Rt_trace.Corrupt.kind_of_string s with
              | Some k -> Ok k
              | None -> Error (`Msg (Printf.sprintf "unknown corruption kind %S" s))),
          fun ppf k ->
            Format.pp_print_string ppf (Rt_trace.Corrupt.kind_to_string k) )
    in
    Arg.(value & opt (list kind_conv) Rt_trace.Corrupt.all_kinds
         & info [ "kinds" ] ~docv:"KINDS"
             ~doc:(Printf.sprintf
                     "Comma-separated corruption kinds to apply (default \
                      all): %s."
                     (String.concat ", "
                        (List.map Rt_trace.Corrupt.kind_to_string
                           Rt_trace.Corrupt.all_kinds))))
  in
  let rate =
    Arg.(value & opt float 0.05 & info [ "rate" ] ~docv:"P"
           ~doc:"Per-event / per-period corruption probability, in [0, 1].")
  in
  let eps =
    Arg.(value & opt int 50 & info [ "eps" ] ~docv:"US"
           ~doc:"Jitter/skew magnitude for the timing corruptions, us.")
  in
  let torn_at =
    Arg.(value & opt (some int) None & info [ "torn-at" ] ~docv:"BYTE"
           ~doc:"Torn-write mode: truncate the rendered trace at byte \
                 offset BYTE — mid-line or mid-frame — emulating a \
                 logger killed with a partially flushed write buffer.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the corrupted trace to FILE instead of stdout.")
  in
  Cmd.v (Cmd.info "inject"
           ~doc:"Corrupt a trace reproducibly, for exercising recover-mode \
                 ingestion")
    Term.((const inject $ trace_arg $ kinds $ rate $ eps $ seed_arg
               $ torn_at $ output))

let stats_cmd =
  let recover =
    Arg.(value & flag & info [ "recover" ]
           ~doc:"Ingest in recover mode and include the quarantine \
                 account (skipped lines, repaired/dropped periods, \
                 confidence) in the statistics.")
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print descriptive statistics of a trace")
    Term.((const stats $ trace_arg $ recover $ eps_arg))

let report_cmd =
  let metrics_file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"METRICS"
           ~doc:"Metrics JSON written by $(b,learn --metrics). Omit when \
                 querying a live daemon with $(b,--socket).")
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Query a live $(b,rtgen serve) daemon over its control \
                 socket instead of reading a file.")
  in
  let query =
    Arg.(value & opt string "metrics" & info [ "query" ] ~docv:"REQ"
           ~doc:"Control request to send with $(b,--socket): \
                 $(b,metrics) (rendered as the usual table), \
                 $(b,status), $(b,snapshot ID), $(b,flight) (the \
                 flight-recorder dump), $(b,prometheus) or $(b,drain) \
                 (printed verbatim).")
  in
  let prometheus =
    Arg.(value & flag & info [ "prometheus" ]
           ~doc:"Render the metrics in Prometheus text exposition format \
                 instead of the per-phase tables (works on a METRICS \
                 file and over $(b,--socket)).")
  in
  Cmd.v (Cmd.info "report"
           ~doc:"Render a metrics file, or query a live daemon")
    Term.((const report $ metrics_file $ socket $ query $ prometheus))

let serve_cmd =
  let spool =
    Arg.(value & opt (some string) None & info [ "spool" ] ~docv:"DIR"
           ~doc:"Follow every *.trace file in DIR as a live stream \
                 (rescanned continuously; rotation-aware).")
  in
  let listen =
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"PATH"
           ~doc:"Accept trace streams on a unix socket at PATH (greeting \
                 $(b,OK ID), or $(b,BUSY) over the admission limit).")
  in
  let control =
    Arg.(value & opt (some string) None & info [ "control" ] ~docv:"PATH"
           ~doc:"Expose status/snapshot/metrics/drain on a unix socket at \
                 PATH — `rtgen report --socket PATH` speaks it.")
  in
  let out_dir =
    Arg.(value & opt string "." & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory receiving one ID.model file per finalized \
                 stream.")
  in
  let checkpoint_dir =
    Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Periodic crash-safe per-stream checkpoints (ID.ckpt): a \
                 SIGKILLed daemon restarted over the same spool finishes \
                 with byte-identical models.")
  in
  let store =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Content-addressed model store (created on demand). \
                 Supersedes $(b,--checkpoint-dir): per-stream checkpoints \
                 land at ckpt/ID refs, and every finalized model is also \
                 committed as a model/ID generation — the fleet-merge / \
                 drift-diff interchange.")
  in
  let checkpoint_every =
    Arg.(value & opt int 64 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Periods between checkpoints.")
  in
  let max_streams =
    Arg.(value & opt int 64 & info [ "max-streams" ] ~docv:"N"
           ~doc:"Admission limit on concurrently live streams; beyond it, \
                 connects get $(b,BUSY) and spool files are deferred.")
  in
  let queue_capacity =
    Arg.(value & opt int 4096 & info [ "queue-capacity" ] ~docv:"LINES"
           ~doc:"Per-stream bounded ingest queue. An overflowing socket \
                 stream is shed (the stream, never the daemon); an \
                 overflowing spool stream just stops being read ahead.")
  in
  let tick =
    Arg.(value & opt float 0.05 & info [ "tick" ] ~docv:"SEC"
           ~doc:"Event-loop tick: select timeout and spool scan cadence.")
  in
  let max_restarts =
    Arg.(value & opt int 5 & info [ "max-restarts" ] ~docv:"N"
           ~doc:"Restart budget per stream before it is declared FAILED.")
  in
  let backoff =
    Arg.(value & opt float 0.1 & info [ "backoff" ] ~docv:"SEC"
           ~doc:"First restart delay; doubles per restart.")
  in
  let backoff_cap =
    Arg.(value & opt float 5.0 & info [ "backoff-cap" ] ~docv:"SEC"
           ~doc:"Ceiling on the restart delay.")
  in
  let stall_timeout =
    Arg.(value & opt float 30.0 & info [ "stall-timeout" ] ~docv:"SEC"
           ~doc:"Queued input but no periods produced for this long: the \
                 stream is treated as crashed.")
  in
  let idle_timeout =
    Arg.(value & opt (some float) None & info [ "idle-timeout" ] ~docv:"SEC"
           ~doc:"No input at all for this long: the stream is drained and \
                 finalized (off by default).")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the daemon's metrics JSON to FILE when draining.")
  in
  let flight =
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE"
           ~doc:"Write the flight-recorder dump (rtgen-flight JSON) to \
                 FILE at exit, and eagerly on every stream failure or \
                 quarantine latch. The recorder itself is always on; \
                 query it live with $(b,rtgen report --socket --query \
                 flight).")
  in
  let flight_capacity =
    Arg.(value & opt int 1024 & info [ "flight-capacity" ] ~docv:"N"
           ~doc:"Flight-recorder ring size in events; when it wraps, the \
                 oldest events are overwritten (the dump reports how \
                 many).")
  in
  let stop_after_total =
    Arg.(value & opt (some int) None & info [ "stop-after-total" ] ~docv:"N"
           ~doc:"Exit abruptly — no final checkpoints, no models — once N \
                 periods were handled: deterministic SIGKILL emulation \
                 for crash-recovery tests.")
  in
  let drain_after_total =
    Arg.(value & opt (some int) None & info [ "drain-after-total" ] ~docv:"N"
           ~doc:"Drain and exit once N periods were handled (consumes \
                 everything already on disk first).")
  in
  Cmd.v (Cmd.info "serve"
           ~doc:"Learn many live trace streams under one supervised daemon \
                 (rtgend)")
    Term.((const serve $ spool $ listen $ control $ out_dir $ checkpoint_dir
               $ store $ checkpoint_every $ bound_arg $ window_arg $ eps_arg
               $ jobs_arg $ max_streams $ queue_capacity $ tick
               $ max_restarts $ backoff $ backoff_cap $ stall_timeout
               $ idle_timeout $ metrics $ flight $ flight_capacity
               $ stop_after_total $ drain_after_total))

let top_cmd =
  let socket =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"The daemon's control socket ($(b,rtgen serve \
                 --control) path).")
  in
  let interval =
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SEC"
           ~doc:"Seconds between refreshes.")
  in
  let count =
    Arg.(value & opt (some int) None & info [ "count" ] ~docv:"N"
           ~doc:"Render N frames and exit (default: refresh until \
                 interrupted).")
  in
  let no_clear =
    Arg.(value & flag & info [ "no-clear" ]
           ~doc:"Do not clear the screen between frames — append them, \
                 for logs and CI.")
  in
  Cmd.v (Cmd.info "top"
           ~doc:"Live per-stream fleet table for a running rtgend \
                 (state, periods, queue depth, checkpoint age)")
    Term.((const top $ socket $ interval $ count $ no_clear))

let vcd_cmd =
  let import =
    Arg.(value & flag & info [ "import" ]
           ~doc:"Go the other way: read TRACE as a VCD dump and print the \
                 corresponding rtgen-trace.")
  in
  let period_len =
    Arg.(value & opt (some int) None & info [ "period-len" ] ~docv:"US"
           ~doc:"Period length in microseconds (export: waveform spacing; \
                 import: slice boundary — inferred when omitted).")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the result to FILE instead of stdout.")
  in
  Cmd.v (Cmd.info "vcd"
           ~doc:"Export a trace as a Value Change Dump for waveform viewers \
                 (or import one)")
    Term.((const vcd $ trace_arg $ import $ period_len $ output))

let anonymize_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the anonymized trace to FILE instead of stdout.")
  in
  Cmd.v (Cmd.info "anonymize"
           ~doc:"Rename tasks and bus ids for sharing a proprietary trace \
                 (mapping printed on stderr)")
    Term.((const anonymize $ trace_arg $ output))

let gantt_cmd =
  let period =
    Arg.(value & opt int 0 & info [ "period" ] ~docv:"N"
           ~doc:"Which period to draw (default 0).")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the SVG to FILE instead of stdout.")
  in
  Cmd.v (Cmd.info "gantt" ~doc:"Render one period as an SVG Gantt chart")
    Term.((const gantt $ trace_arg $ period $ output))

let query_cmd =
  let query =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Property to check, e.g. 'd(A,L) = -> & conjunction(Q)'.")
  in
  let model_file =
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"MODEL"
           ~doc:"Use a model saved by $(b,learn -o), or a store address \
                 ($(b,DIR//ref), $(b,DIR//ref@N)), instead of \
                 re-learning.")
  in
  Cmd.v (Cmd.info "query"
           ~doc:"Check a dependency property against the learned model \
                 (exit 1 when it does not hold)")
    Term.((const run_query $ trace_arg $ query $ bound_arg $ window_arg
               $ jobs_arg $ model_file))

let check_cmd =
  (* [string], not [file]: a missing model is this tool's input error
     (exit 2), not command-line misuse (124). *)
  let models =
    Arg.(value & pos_all string [] & info [] ~docv:"MODEL"
           ~doc:"Model files saved by $(b,learn -o), or store addresses \
                 ($(b,DIR//ref@N)) of model, companion or answer-set \
                 blobs; several models are additionally audited together \
                 as one answer set.")
  in
  let ckpt =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"SLOT"
           ~doc:"Audit a learner checkpoint written by $(b,learn \
                 --checkpoint) — a file or a store address \
                 ($(b,DIR//ref@N)): bound respected, working set \
                 canonical.")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"TRACE"
           ~doc:"Also verify every definite cell of every MODEL against \
                 this trace (post-processing hygiene).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Escalate warnings to errors for the exit code.")
  in
  Cmd.v (Cmd.info "check"
           ~doc:"Statically audit learned models, answer sets and \
                 checkpoints")
    Term.((const model_check $ models $ ckpt $ trace_file $ format_arg
               $ findings_out_arg $ strict))

let merge_cmd =
  let stores =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"STORE"
           ~doc:"Store directories written by $(b,learn --store) (or \
                 $(b,serve --store)); every Companion-kind ref's latest \
                 generation contributes one part.")
  in
  let ref_filter =
    Arg.(value & opt (some string) None & info [ "ref" ] ~docv:"REF"
           ~doc:"Only fold companions under REF/b1 (the parts committed \
                 by $(b,learn --store --ref) REF).")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Also save the fleet model (matrix text) to FILE — \
                 byte-equal to a monolithic bound-1 $(b,learn -o) over \
                 the concatenated periods.")
  in
  let out_store =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
           ~doc:"Also commit the fleet model to the store at DIR, with \
                 the folded companion addresses as parents.")
  in
  let out_ref =
    Arg.(value & opt string "fleet" & info [ "out-ref" ] ~docv:"REF"
           ~doc:"Ref name the fleet commit lands under (default \
                 $(b,fleet)).")
  in
  Cmd.v (Cmd.info "merge"
           ~doc:"Fold the bound-1 companions of several stores into one \
                 fleet model (the cross-process half of --shards)")
    Term.((const merge $ stores $ ref_filter $ dot_arg $ output $ out_store
               $ out_ref))

let store_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Store directory.")
  in
  let init =
    Cmd.v (Cmd.info "init" ~doc:"Create an empty store (idempotent)")
      Term.(const cmd_store_init $ dir_arg)
  in
  let refs =
    Cmd.v (Cmd.info "refs"
             ~doc:"List every ref with its latest generation and kind")
      Term.(const cmd_store_refs $ dir_arg)
  in
  let log =
    let ref_arg =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"REF"
             ~doc:"Ref name.")
    in
    Cmd.v (Cmd.info "log"
             ~doc:"Print a ref's generations, oldest first, with their \
                   metadata")
      Term.(const cmd_store_log $ dir_arg $ ref_arg)
  in
  let cat =
    let address =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDRESS"
             ~doc:"Store address, $(b,DIR//ref), $(b,DIR//ref@N) or \
                   $(b,DIR//ref\\@latest).")
    in
    let output =
      Arg.(value & opt (some string) None & info [ "o"; "output" ]
             ~docv:"FILE" ~doc:"Write the blob to FILE instead of stdout.")
    in
    Cmd.v (Cmd.info "cat"
             ~doc:"Print the blob a store address resolves to \
                   (hash-verified); --dot renders a model blob as \
                   Graphviz")
      Term.(const cmd_store_cat $ address $ dot_arg $ output)
  in
  let put =
    let ref_arg =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"REF"
             ~doc:"Ref name to commit under.")
    in
    let file_arg =
      Arg.(required & pos 2 (some file) None & info [] ~docv:"FILE"
             ~doc:"File whose bytes become the blob (kind sniffed from \
                   the content).")
    in
    Cmd.v (Cmd.info "put"
             ~doc:"Commit a file's bytes as a new generation of a ref \
                   (plumbing)")
      Term.(const cmd_store_put $ dir_arg $ ref_arg $ file_arg)
  in
  let gc =
    Cmd.v (Cmd.info "gc"
             ~doc:"Delete blobs referenced by no generation of any ref")
      Term.(const cmd_store_gc $ dir_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and maintain a content-addressed model store")
    [ init; refs; log; cat; put; gc ]

let table1_cmd =
  let fast = Arg.(value & flag & info [ "fast" ] ~doc:"Only the small bounds.") in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce the paper's runtime-vs-bound table")
    Term.((const table1 $ fast $ jobs_arg))

let example_cmd =
  Cmd.v (Cmd.info "example" ~doc:"Run the paper's worked example")
    Term.((const example $ const ()))

let () =
  let doc = "automatic model generation for black box real-time systems" in
  let info = Cmd.info "rtgen" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ simulate_cmd; learn_cmd; watch_cmd; serve_cmd; top_cmd; merge_cmd;
        store_cmd; analyze_cmd; query_cmd; check_cmd; inject_cmd; stats_cmd;
        report_cmd; vcd_cmd; gantt_cmd; anonymize_cmd; table1_cmd;
        example_cmd ]
  in
  let code =
    try Cmd.eval' ~catch:false group
    with exn ->
      prerr_endline ("rtgen: internal error: " ^ Printexc.to_string exn);
      Ec.internal_error
  in
  exit code
