#!/usr/bin/env python3
"""Validate an rtgen findings file against findings.schema.json.

Standard library only (CI containers have no jsonschema package), so
this implements exactly the subset of JSON Schema draft-07 the committed
schema uses — const, enum, type, required, additionalProperties,
minimum, pattern, $ref into definitions — plus the cross-checks the
schema cannot state: the errors/warnings tallies must match the
findings array, a finding with any of file/line/col must carry all
three, and the array must be sorted the way Rt_check.Finding.sort
emits it (by file, line, column, then rule id).

Usage: scripts/check_findings.py FINDINGS.json [SCHEMA.json]
Exit 0 when valid; prints each violation and exits 1 otherwise.
"""

import json
import re
import sys
from pathlib import Path

errors = []


def fail(path, message):
    errors.append(f"{path}: {message}")


def resolve(schema, root):
    if "$ref" in schema:
        ref = schema["$ref"]
        assert ref.startswith("#/"), f"unsupported $ref {ref}"
        node = root
        for part in ref[2:].split("/"):
            node = node[part]
        return node
    return schema


def check(value, schema, root, path):
    schema = resolve(schema, root)
    if "const" in schema:
        if value != schema["const"]:
            fail(path, f"expected {schema['const']!r}, got {value!r}")
        return
    if "enum" in schema:
        if value not in schema["enum"]:
            fail(path, f"{value!r} not one of {schema['enum']}")
        return
    expected = schema.get("type")
    if expected == "object":
        if not isinstance(value, dict):
            fail(path, f"expected object, got {type(value).__name__}")
            return
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required member {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, member in value.items():
            if key in props:
                check(member, props[key], root, f"{path}.{key}")
            elif extra is False:
                fail(path, f"unexpected member {key!r}")
            elif isinstance(extra, dict):
                check(member, extra, root, f"{path}.{key}")
    elif expected == "array":
        if not isinstance(value, list):
            fail(path, f"expected array, got {type(value).__name__}")
            return
        items = schema.get("items")
        if items:
            for i, item in enumerate(value):
                check(item, items, root, f"{path}[{i}]")
    elif expected == "integer":
        # bool is an int subclass in Python; JSON true is not an integer.
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"expected integer, got {type(value).__name__}")
            return
        if "minimum" in schema and value < schema["minimum"]:
            fail(path, f"{value} below minimum {schema['minimum']}")
    elif expected == "string":
        if not isinstance(value, str):
            fail(path, f"expected string, got {type(value).__name__}")
            return
        pattern = schema.get("pattern")
        if pattern and not re.search(pattern, value):
            fail(path, f"{value!r} does not match {pattern!r}")
    else:
        raise AssertionError(f"schema uses unsupported type {expected!r}")


def check_consistency(doc, path):
    findings = doc.get("findings")
    if not isinstance(findings, list):
        return
    tallies = {"error": 0, "warning": 0, "info": 0}
    for i, f in enumerate(findings):
        if not isinstance(f, dict):
            continue
        sev = f.get("severity")
        if sev in tallies:
            tallies[sev] += 1
        located = [k for k in ("file", "line", "col") if k in f]
        if located and len(located) != 3:
            fail(
                f"{path}.findings[{i}]",
                f"partial location: has {located}, needs file+line+col",
            )
    for member, sev in (("errors", "error"), ("warnings", "warning")):
        declared = doc.get(member)
        if isinstance(declared, int) and declared != tallies[sev]:
            fail(
                path,
                f"{member} says {declared} but the findings array "
                f"holds {tallies[sev]} {sev}(s)",
            )
    # Finding.sort's emission order: located findings grouped by file,
    # then line, then column, ties broken by rule id; unlocated first.
    def key(f):
        return (
            f.get("file", ""),
            f.get("line", -1),
            f.get("col", -1),
            f.get("rule", ""),
        )

    keys = [key(f) for f in findings if isinstance(f, dict)]
    if keys != sorted(keys):
        fail(f"{path}.findings", "array is not in Finding.sort order")


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__.strip().splitlines()[-2].strip(), file=sys.stderr)
        return 2
    doc_path = Path(sys.argv[1])
    schema_path = (
        Path(sys.argv[2])
        if len(sys.argv) == 3
        else Path(__file__).resolve().parent.parent / "findings.schema.json"
    )
    doc = json.loads(doc_path.read_text())
    schema = json.loads(schema_path.read_text())
    check(doc, schema, schema, "$")
    check_consistency(doc, "$")
    if errors:
        for e in errors:
            print(f"{doc_path}: {e}", file=sys.stderr)
        return 1
    print(f"{doc_path}: ok ({len(doc.get('findings', []))} finding(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
