#!/usr/bin/env python3
"""CI perf gate over BENCH_heuristic.json.

Compares a freshly generated bench payload against the committed
baseline and fails on a relative regression of the workset learner.

Absolute wall times are useless across machines (the committed baseline
was measured on whatever box last regenerated it), so the gate is on a
machine-neutral ratio: at each bound, both files carry the workset and
the seed-list implementation measured back to back on the *same* host,
and their quotient cancels the host speed. The gate is

    slowdown(bound) = (fresh_workset / fresh_legacy)
                    / (baseline_workset / baseline_legacy)

and any bound present in both files with slowdown > 1.25 (a >25%
relative regression of the workset path) fails the run. Bounds whose
combined wall time sits under a small noise floor in either file are
reported but not gated — a ~50 ms sweep's quotient is scheduler noise.

The sharded section, when present in both files *at the same bound*, is
gated the same way: per shard count K, sharded seconds normalized by
the same file's monolithic seconds. Files that predate the sharded
section (or fast-mode payloads sharding at a different bound) pass the
sharded gate vacuously, so the gate can land before the baseline is
regenerated.

The recorder section (flight-recorder overhead) is gated on the fresh
payload alone: it carries the same engine feed timed with and without
a recorder attached, so its on/off quotient is machine-neutral by
construction and must stay under the same threshold.

Standard library only (CI containers have no extra packages).

Usage: scripts/check_bench.py FRESH.json [BASELINE.json]
BASELINE defaults to the committed BENCH_heuristic.json next to this
script's repo root. Exit 0 when within budget; prints each regression
and exits 1 otherwise.
"""

import json
import sys
from pathlib import Path

THRESHOLD = 1.25

# Rows whose combined wall time is below this are dominated by timer and
# scheduler noise (a bound-4 sweep runs in ~50 ms); they are printed for
# information but never gated.
NOISE_FLOOR_S = 0.2

errors = []


def rows_by_bound(doc):
    return {row["bound"]: row for row in doc.get("bounds", [])}


def ratio(row):
    legacy = row["legacy_seconds"]
    if legacy <= 0:
        return None
    return row["workset_seconds"] / legacy


def check_bounds(fresh, base):
    fresh_rows = rows_by_bound(fresh)
    base_rows = rows_by_bound(base)
    shared = sorted(set(fresh_rows) & set(base_rows))
    if not shared:
        errors.append("no common bounds between fresh and baseline payloads")
        return
    for bound in shared:
        fr = ratio(fresh_rows[bound])
        br = ratio(base_rows[bound])
        if fr is None or br is None or br <= 0:
            # A sub-millisecond legacy run truncated to zero cannot be
            # normalized; skip rather than divide by it.
            print(f"bound {bound}: unusable timing, skipped")
            continue
        slowdown = fr / br
        if any(
            rows[bound]["workset_seconds"] + rows[bound]["legacy_seconds"]
            < NOISE_FLOOR_S
            for rows in (fresh_rows, base_rows)
        ):
            print(
                f"bound {bound}: workset/legacy {fr:.3f} vs baseline "
                f"{br:.3f} -> slowdown {slowdown:.2f}x "
                f"[below {NOISE_FLOOR_S:.1f}s noise floor, informational]"
            )
            continue
        verdict = "FAIL" if slowdown > THRESHOLD else "ok"
        print(
            f"bound {bound}: workset/legacy {fr:.3f} vs baseline {br:.3f} "
            f"-> slowdown {slowdown:.2f}x [{verdict}]"
        )
        if slowdown > THRESHOLD:
            errors.append(
                f"bound {bound}: workset slowed down {slowdown:.2f}x vs "
                f"baseline (budget {THRESHOLD:.2f}x)"
            )


def sharded_by_k(doc):
    section = doc.get("sharded")
    if not section or section.get("monolithic_seconds", 0) <= 0:
        return None
    mono = section["monolithic_seconds"]
    return {run["shards"]: run["seconds"] / mono for run in section["runs"]}


def check_sharded(fresh, base):
    fresh_runs = sharded_by_k(fresh)
    base_runs = sharded_by_k(base)
    if fresh_runs is None or base_runs is None:
        print("sharded section absent or untimed in one payload; skipped")
        return
    fb = fresh.get("sharded", {}).get("bound")
    bb = base.get("sharded", {}).get("bound")
    if fb != bb:
        # Fast-mode payloads shard at a small bound; the per-shard /
        # monolithic ratio is bound-dependent, so cross-bound quotients
        # are meaningless.
        print(f"sharded bounds differ (fresh {fb}, baseline {bb}); skipped")
        return
    for k in sorted(set(fresh_runs) & set(base_runs)):
        if base_runs[k] <= 0:
            continue
        slowdown = fresh_runs[k] / base_runs[k]
        verdict = "FAIL" if slowdown > THRESHOLD else "ok"
        print(
            f"shards {k}: sharded/monolithic {fresh_runs[k]:.3f} vs "
            f"baseline {base_runs[k]:.3f} -> slowdown {slowdown:.2f}x "
            f"[{verdict}]"
        )
        if slowdown > THRESHOLD:
            errors.append(
                f"shards {k}: sharded path slowed down {slowdown:.2f}x vs "
                f"baseline (budget {THRESHOLD:.2f}x)"
            )


def check_recorder(fresh):
    """Gate the flight-recorder overhead on the fresh payload alone.

    The recorder section carries a bound-64 engine feed measured twice
    on the same host, with and without a recorder scope attached, so
    the on/off quotient is already machine-neutral — no baseline
    needed. Payloads that predate the section pass vacuously.
    """
    sec = fresh.get("recorder")
    if not sec:
        print("recorder section absent; skipped")
        return
    off = sec.get("off_seconds", 0)
    on = sec.get("on_seconds", 0)
    if off <= 0:
        print("recorder off-run untimed; skipped")
        return
    overhead = on / off
    if off + on < NOISE_FLOOR_S:
        print(
            f"recorder: on/off {overhead:.3f}x "
            f"[below {NOISE_FLOOR_S:.1f}s noise floor, informational]"
        )
        return
    verdict = "FAIL" if overhead > THRESHOLD else "ok"
    print(
        f"recorder: bound {sec.get('bound')} feed, on/off {overhead:.3f}x "
        f"({sec.get('events', 0)} events) [{verdict}]"
    )
    if overhead > THRESHOLD:
        errors.append(
            f"recorder: attaching the flight recorder cost {overhead:.2f}x "
            f"(budget {THRESHOLD:.2f}x) — it must stay near-free"
        )


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__)
    fresh_path = Path(sys.argv[1])
    base_path = (
        Path(sys.argv[2]) if len(sys.argv) == 3
        else Path(__file__).resolve().parent.parent / "BENCH_heuristic.json"
    )
    fresh = json.loads(fresh_path.read_text())
    base = json.loads(base_path.read_text())
    check_bounds(fresh, base)
    check_sharded(fresh, base)
    check_recorder(fresh)
    if errors:
        print("\n".join(errors), file=sys.stderr)
        sys.exit(1)
    print(f"{fresh_path.name}: within {THRESHOLD:.2f}x of {base_path.name}")


if __name__ == "__main__":
    main()
