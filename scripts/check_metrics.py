#!/usr/bin/env python3
"""Validate an rtgen metrics file against metrics.schema.json.

Standard library only (CI containers have no jsonschema package), so
this implements exactly the subset of JSON Schema draft-07 the committed
schema uses — const, type, required, additionalProperties, minimum,
$ref into definitions — plus the one property the schema cannot state:
the deterministic sections (counters, gauges, histograms) must precede
the timing-dependent ones (spans, elapsed_ns) in the emitted file, which
is what lets tests compare counter sections textually.

A second mode cross-checks a Prometheus text exposition against the
metrics document it was rendered from. lib/obs/prom.ml maps registry
names to sample names (counter a.b -> rtgen_a_b_total, gauge -> bare +
_max, histogram -> cumulative _bucket{le} ending at +Inf plus _sum and
_count, span -> _spans_total and _span_ns_total, elapsed_ns -> gauge,
daemon.stream.<id>.<metric> -> one labelled family per metric); this
script recomputes that mapping independently and requires the rendered
families to match it exactly — same names, same TYPE lines, same label
sets, same values, samples contiguous under their family's TYPE line.

Usage: scripts/check_metrics.py METRICS.json [SCHEMA.json]
       scripts/check_metrics.py --prometheus EXPOSITION.txt METRICS.json
Exit 0 when valid; prints each violation and exits 1 otherwise.
"""

import json
import re
import sys
from collections import OrderedDict
from pathlib import Path

errors = []


def fail(path, message):
    errors.append(f"{path}: {message}")


def resolve(schema, root):
    if "$ref" in schema:
        ref = schema["$ref"]
        assert ref.startswith("#/"), f"unsupported $ref {ref}"
        node = root
        for part in ref[2:].split("/"):
            node = node[part]
        return node
    return schema


def check(value, schema, root, path):
    schema = resolve(schema, root)
    if "const" in schema:
        if value != schema["const"]:
            fail(path, f"expected {schema['const']!r}, got {value!r}")
        return
    expected = schema.get("type")
    if expected == "object":
        if not isinstance(value, dict):
            fail(path, f"expected object, got {type(value).__name__}")
            return
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required member {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, member in value.items():
            if key in props:
                check(member, props[key], root, f"{path}.{key}")
            elif extra is False:
                fail(path, f"unexpected member {key!r}")
            elif isinstance(extra, dict):
                check(member, extra, root, f"{path}.{key}")
    elif expected == "array":
        if not isinstance(value, list):
            fail(path, f"expected array, got {type(value).__name__}")
            return
        items = schema.get("items")
        if items:
            for i, item in enumerate(value):
                check(item, items, root, f"{path}[{i}]")
    elif expected == "integer":
        # bool is an int subclass in Python; JSON true is not an integer.
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"expected integer, got {type(value).__name__}")
            return
        if "minimum" in schema and value < schema["minimum"]:
            fail(path, f"{value} below minimum {schema['minimum']}")
    else:
        raise AssertionError(f"schema uses unsupported type {expected!r}")


def check_engine_section(doc, path):
    """Cross-instrument consistency for streaming-engine runs.

    A run that went through Rt_engine publishes engine.* counters,
    gauges, and a feed-latency histogram; their totals are different
    views of the same stream and must agree — with each other and with
    the learn.* counters the core publishes.
    """
    counters = doc.get("counters", {})
    if "engine.periods" not in counters:
        return  # not an engine run (e.g. a bench sidecar)
    periods = counters["engine.periods"]
    messages = counters.get("engine.messages")
    if messages is None:
        fail(path, "engine.periods present without engine.messages")
    if "learn.periods" in counters and counters["learn.periods"] != periods:
        fail(
            path,
            f"engine.periods {periods} != learn.periods "
            f"{counters['learn.periods']}",
        )
    hist = doc.get("histograms", {}).get("engine.feed_ns")
    if hist is None:
        fail(path, "engine run without an engine.feed_ns histogram")
    elif hist.get("count") != periods:
        fail(
            path,
            f"engine.feed_ns count {hist.get('count')} != "
            f"engine.periods {periods}",
        )
    for gauge_name, total in (
        ("engine.periods_in_flight", periods),
        ("engine.messages_in_flight", messages),
    ):
        gauge = doc.get("gauges", {}).get(gauge_name)
        if gauge is None:
            fail(path, f"engine run without a {gauge_name} gauge")
        elif gauge.get("last") != total:
            fail(
                path,
                f"{gauge_name} last {gauge.get('last')} != {total}",
            )


def check_shard_section(doc, path):
    """Cross-instrument consistency for sharded runs.

    A run through Rt_shard publishes shard.* counters from the calling
    domain (pool workers carry no registry): the shard count, the
    worker-pool width it ran on, the fed totals, and one worker_us
    sample per shard. The bench sidecar's bench.jobs / bench.shards
    pair follows the same rule.
    """
    counters = doc.get("counters", {})
    if "shard.shards" in counters:
        shards = counters["shard.shards"]
        if shards < 1:
            fail(path, f"shard.shards {shards} < 1")
        jobs = counters.get("shard.jobs")
        if jobs is None:
            fail(path, "shard.shards present without shard.jobs")
        elif jobs < 1:
            fail(path, f"shard.jobs {jobs} < 1")
        for key in ("shard.periods", "shard.messages"):
            if key not in counters:
                fail(path, f"shard.shards present without {key}")
        # Batch runs record one worker_us sample per shard; streaming
        # runs feed obs-free units and legitimately omit the histogram.
        hist = doc.get("histograms", {}).get("shard.worker_us")
        if hist is not None and hist.get("count") != shards:
            fail(
                path,
                f"shard.worker_us count {hist.get('count')} != "
                f"shard.shards {shards}",
            )
    if "bench.shards" in counters:
        if counters["bench.shards"] < 1:
            fail(path, f"bench.shards {counters['bench.shards']} < 1")
        jobs = counters.get("bench.jobs")
        if jobs is None:
            fail(path, "bench.shards present without bench.jobs")
        elif jobs < 1:
            fail(path, f"bench.jobs {jobs} < 1")
        if "bench.sharded_us" not in doc.get("histograms", {}):
            fail(path, "bench.shards present without bench.sharded_us")


def check_daemon_section(doc, path):
    """Stream-accounting invariants for rtgend (rtgen serve) dumps.

    Every admitted stream must end the run in exactly one ledger:
    still active, finalized, terminally failed, or shed — so the
    counters have to balance against the streams_active gauge. A
    drained daemon also cannot have handled zero periods, and a run
    configured with checkpoints must actually have written some.
    """
    counters = doc.get("counters", {})
    if "daemon.streams_accepted" not in counters:
        return  # not a daemon run
    accepted = counters["daemon.streams_accepted"]
    for key in (
        "daemon.streams_finalized",
        "daemon.streams_failed",
        "daemon.streams_shed",
        "daemon.busy_rejections",
        "daemon.restarts",
        "daemon.periods",
        "daemon.checkpoints",
    ):
        if key not in counters:
            fail(path, f"daemon run without {key}")
            return
    active = doc.get("gauges", {}).get("daemon.streams_active")
    if active is None:
        fail(path, "daemon run without a daemon.streams_active gauge")
        return
    settled = (
        counters["daemon.streams_finalized"]
        + counters["daemon.streams_failed"]
        + counters["daemon.streams_shed"]
    )
    if accepted != active.get("last") + settled:
        fail(
            path,
            f"daemon.streams_accepted {accepted} != active "
            f"{active.get('last')} + finalized/failed/shed {settled}",
        )
    if accepted > 0 and counters["daemon.periods"] == 0:
        fail(path, "daemon accepted streams but handled zero periods")
    for stream_gauge, total in (("periods", counters["daemon.periods"]),):
        per_stream = sum(
            g.get("last", 0)
            for name, g in doc.get("gauges", {}).items()
            if name.startswith("daemon.stream.")
            and name.endswith("." + stream_gauge)
        )
        if per_stream > total:
            fail(
                path,
                f"per-stream {stream_gauge} sum {per_stream} exceeds "
                f"daemon.periods {total}",
            )


def check_section_order(doc, path):
    order = list(doc.keys())
    expected = [
        "schema", "version", "counters", "gauges", "histograms", "spans",
        "elapsed_ns",
    ]
    if order != expected:
        fail(path, f"section order {order} != {expected}")


# --- Prometheus exposition cross-check ------------------------------------
#
# An independent reimplementation of the prom.ml name mapping. Both
# sides read the same metrics document; the exposition must agree with
# what this derivation says it should contain, sample for sample.

PROM_PREFIX = "rtgen_"

PROM_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (-?\d+)$"
)
PROM_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def prom_sanitize(name):
    return re.sub(r"[^a-zA-Z0-9_]", "_", name)


def prom_split_stream_name(name):
    """daemon.stream.<id>.<metric> -> (family base, stream id), else None."""
    p = "daemon.stream."
    if name.startswith(p) and len(name) > len(p):
        rest = name[len(p):]
        i = rest.rfind(".")
        if i > 0:
            return "daemon.stream." + rest[i + 1:], rest[:i]
    return None


def prom_group_families(members):
    """Group name-keyed members into label-carrying families, preserving
    first-seen order (matching the renderer's contiguity rule)."""
    fams = OrderedDict()
    for name, value in members.items():
        split = prom_split_stream_name(name)
        if split:
            base, stream = split
            fams.setdefault(base, []).append(((("stream", stream),), value))
        else:
            fams.setdefault(name, []).append(((), value))
    return fams


def prom_expected_families(doc):
    """Derive the full expected exposition from a metrics document:
    {prom family name: (type, set of (sample name, labels, value))}."""
    fams = OrderedDict()

    def family(fam, ftype, samples):
        name = PROM_PREFIX + prom_sanitize(fam)
        fams[name] = (
            ftype,
            {(name + suffix, labels, value) for suffix, labels, value in samples},
        )

    for fam, entries in prom_group_families(doc.get("counters", {})).items():
        family(fam + "_total", "counter", [("", l, v) for l, v in entries])
    for fam, entries in prom_group_families(doc.get("gauges", {})).items():
        family(fam, "gauge", [("", l, g["last"]) for l, g in entries])
        family(fam + "_max", "gauge", [("", l, g["max"]) for l, g in entries])
    for fam, entries in prom_group_families(doc.get("histograms", {})).items():
        samples = []
        for labels, h in entries:
            # The document stores per-bucket counts with the open top
            # bucket's bound printed as -1; the exposition carries
            # cumulative counts and folds the open bucket into +Inf.
            cum = 0
            for b in h.get("buckets", []):
                cum += b["count"]
                if b["le"] >= 0:
                    samples.append(
                        ("_bucket", labels + (("le", str(b["le"])),), cum)
                    )
            samples.append(("_bucket", labels + (("le", "+Inf"),), h["count"]))
            samples.append(("_sum", labels, h["sum"]))
            samples.append(("_count", labels, h["count"]))
        family(fam, "histogram", samples)
    for fam, entries in prom_group_families(doc.get("spans", {})).items():
        family(
            fam + "_spans_total", "counter",
            [("", l, s["count"]) for l, s in entries],
        )
        family(
            fam + "_span_ns_total", "counter",
            [("", l, s["total_ns"]) for l, s in entries],
        )
    if "elapsed_ns" in doc:
        family("elapsed_ns", "gauge", [("", (), doc["elapsed_ns"])])
    return fams


def prom_unescape(value):
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def prom_parse(text, path):
    """Parse a text exposition into {family: (type, samples)}, enforcing
    the format's contiguity rule: every sample sits under the TYPE line
    of the family it was compared into."""
    fams = OrderedDict()
    current = None
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"{path}:{lineno}"
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(where, f"malformed TYPE line {line!r}")
                continue
            _, _, name, ftype = parts
            if name in fams:
                fail(where, f"duplicate family {name}: samples not contiguous")
            current = name
            fams[name] = (ftype, set())
            continue
        if line.startswith("#"):
            fail(where, f"unexpected comment {line!r}")
            continue
        m = PROM_SAMPLE_RE.match(line)
        if not m:
            fail(where, f"unparseable sample line {line!r}")
            continue
        name, labels_src, value = m.group(1), m.group(2), int(m.group(3))
        labels = tuple(
            (k, prom_unescape(v))
            for k, v in PROM_LABEL_RE.findall(labels_src or "")
        )
        if current is None:
            fail(where, f"sample {name} precedes any TYPE line")
            continue
        if not name.startswith(current):
            fail(where, f"sample {name} not contiguous under family {current}")
            continue
        fams[current][1].add((name, labels, value))
    return fams


def check_prometheus(exposition, doc, path):
    expected = prom_expected_families(doc)
    rendered = prom_parse(exposition, path)
    for name, (ftype, samples) in expected.items():
        if name not in rendered:
            fail(path, f"missing family {name} ({ftype})")
            continue
        got_type, got_samples = rendered[name]
        if got_type != ftype:
            fail(path, f"family {name}: TYPE {got_type}, expected {ftype}")
        for sample in sorted(samples - got_samples):
            fail(path, f"family {name}: missing sample {sample}")
        for sample in sorted(got_samples - samples):
            fail(path, f"family {name}: unexpected sample {sample}")
    for name in rendered:
        if name not in expected:
            fail(path, f"family {name} not derivable from the document")
    return expected


def main_prometheus(args):
    if len(args) != 2:
        sys.exit(__doc__)
    prom_path, metrics_path = Path(args[0]), Path(args[1])
    doc = json.loads(metrics_path.read_text(), object_pairs_hook=OrderedDict)
    expected = check_prometheus(
        prom_path.read_text(), doc, prom_path.name
    )
    if errors:
        print("\n".join(errors), file=sys.stderr)
        sys.exit(1)
    samples = sum(len(s) for _, s in expected.values())
    print(
        f"{prom_path.name}: matches {metrics_path.name} — "
        f"{len(expected)} families, {samples} samples"
    )


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--prometheus":
        main_prometheus(sys.argv[2:])
        return
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__)
    metrics_path = Path(sys.argv[1])
    schema_path = (
        Path(sys.argv[2]) if len(sys.argv) == 3
        else Path(__file__).resolve().parent.parent / "metrics.schema.json"
    )
    schema = json.loads(schema_path.read_text())
    doc = json.loads(metrics_path.read_text(), object_pairs_hook=OrderedDict)
    check(doc, schema, schema, metrics_path.name)
    if isinstance(doc, dict):
        check_section_order(doc, metrics_path.name)
        check_engine_section(doc, metrics_path.name)
        check_shard_section(doc, metrics_path.name)
        check_daemon_section(doc, metrics_path.name)
    if errors:
        print("\n".join(errors), file=sys.stderr)
        sys.exit(1)
    counters = doc.get("counters", {})
    engine = (
        f", engine run over {counters['engine.periods']} periods"
        if "engine.periods" in counters
        else ""
    )
    print(
        f"{metrics_path.name}: valid rtgen-metrics v{doc.get('version')}; "
        f"{len(counters)} counters, {len(doc.get('spans', {}))} span names"
        f"{engine}"
    )


if __name__ == "__main__":
    main()
