#!/usr/bin/env python3
"""Validate an rtgen metrics file against metrics.schema.json.

Standard library only (CI containers have no jsonschema package), so
this implements exactly the subset of JSON Schema draft-07 the committed
schema uses — const, type, required, additionalProperties, minimum,
$ref into definitions — plus the one property the schema cannot state:
the deterministic sections (counters, gauges, histograms) must precede
the timing-dependent ones (spans, elapsed_ns) in the emitted file, which
is what lets tests compare counter sections textually.

Usage: scripts/check_metrics.py METRICS.json [SCHEMA.json]
Exit 0 when valid; prints each violation and exits 1 otherwise.
"""

import json
import sys
from collections import OrderedDict
from pathlib import Path

errors = []


def fail(path, message):
    errors.append(f"{path}: {message}")


def resolve(schema, root):
    if "$ref" in schema:
        ref = schema["$ref"]
        assert ref.startswith("#/"), f"unsupported $ref {ref}"
        node = root
        for part in ref[2:].split("/"):
            node = node[part]
        return node
    return schema


def check(value, schema, root, path):
    schema = resolve(schema, root)
    if "const" in schema:
        if value != schema["const"]:
            fail(path, f"expected {schema['const']!r}, got {value!r}")
        return
    expected = schema.get("type")
    if expected == "object":
        if not isinstance(value, dict):
            fail(path, f"expected object, got {type(value).__name__}")
            return
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required member {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, member in value.items():
            if key in props:
                check(member, props[key], root, f"{path}.{key}")
            elif extra is False:
                fail(path, f"unexpected member {key!r}")
            elif isinstance(extra, dict):
                check(member, extra, root, f"{path}.{key}")
    elif expected == "array":
        if not isinstance(value, list):
            fail(path, f"expected array, got {type(value).__name__}")
            return
        items = schema.get("items")
        if items:
            for i, item in enumerate(value):
                check(item, items, root, f"{path}[{i}]")
    elif expected == "integer":
        # bool is an int subclass in Python; JSON true is not an integer.
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"expected integer, got {type(value).__name__}")
            return
        if "minimum" in schema and value < schema["minimum"]:
            fail(path, f"{value} below minimum {schema['minimum']}")
    else:
        raise AssertionError(f"schema uses unsupported type {expected!r}")


def check_engine_section(doc, path):
    """Cross-instrument consistency for streaming-engine runs.

    A run that went through Rt_engine publishes engine.* counters,
    gauges, and a feed-latency histogram; their totals are different
    views of the same stream and must agree — with each other and with
    the learn.* counters the core publishes.
    """
    counters = doc.get("counters", {})
    if "engine.periods" not in counters:
        return  # not an engine run (e.g. a bench sidecar)
    periods = counters["engine.periods"]
    messages = counters.get("engine.messages")
    if messages is None:
        fail(path, "engine.periods present without engine.messages")
    if "learn.periods" in counters and counters["learn.periods"] != periods:
        fail(
            path,
            f"engine.periods {periods} != learn.periods "
            f"{counters['learn.periods']}",
        )
    hist = doc.get("histograms", {}).get("engine.feed_ns")
    if hist is None:
        fail(path, "engine run without an engine.feed_ns histogram")
    elif hist.get("count") != periods:
        fail(
            path,
            f"engine.feed_ns count {hist.get('count')} != "
            f"engine.periods {periods}",
        )
    for gauge_name, total in (
        ("engine.periods_in_flight", periods),
        ("engine.messages_in_flight", messages),
    ):
        gauge = doc.get("gauges", {}).get(gauge_name)
        if gauge is None:
            fail(path, f"engine run without a {gauge_name} gauge")
        elif gauge.get("last") != total:
            fail(
                path,
                f"{gauge_name} last {gauge.get('last')} != {total}",
            )


def check_shard_section(doc, path):
    """Cross-instrument consistency for sharded runs.

    A run through Rt_shard publishes shard.* counters from the calling
    domain (pool workers carry no registry): the shard count, the
    worker-pool width it ran on, the fed totals, and one worker_us
    sample per shard. The bench sidecar's bench.jobs / bench.shards
    pair follows the same rule.
    """
    counters = doc.get("counters", {})
    if "shard.shards" in counters:
        shards = counters["shard.shards"]
        if shards < 1:
            fail(path, f"shard.shards {shards} < 1")
        jobs = counters.get("shard.jobs")
        if jobs is None:
            fail(path, "shard.shards present without shard.jobs")
        elif jobs < 1:
            fail(path, f"shard.jobs {jobs} < 1")
        for key in ("shard.periods", "shard.messages"):
            if key not in counters:
                fail(path, f"shard.shards present without {key}")
        # Batch runs record one worker_us sample per shard; streaming
        # runs feed obs-free units and legitimately omit the histogram.
        hist = doc.get("histograms", {}).get("shard.worker_us")
        if hist is not None and hist.get("count") != shards:
            fail(
                path,
                f"shard.worker_us count {hist.get('count')} != "
                f"shard.shards {shards}",
            )
    if "bench.shards" in counters:
        if counters["bench.shards"] < 1:
            fail(path, f"bench.shards {counters['bench.shards']} < 1")
        jobs = counters.get("bench.jobs")
        if jobs is None:
            fail(path, "bench.shards present without bench.jobs")
        elif jobs < 1:
            fail(path, f"bench.jobs {jobs} < 1")
        if "bench.sharded_us" not in doc.get("histograms", {}):
            fail(path, "bench.shards present without bench.sharded_us")


def check_daemon_section(doc, path):
    """Stream-accounting invariants for rtgend (rtgen serve) dumps.

    Every admitted stream must end the run in exactly one ledger:
    still active, finalized, terminally failed, or shed — so the
    counters have to balance against the streams_active gauge. A
    drained daemon also cannot have handled zero periods, and a run
    configured with checkpoints must actually have written some.
    """
    counters = doc.get("counters", {})
    if "daemon.streams_accepted" not in counters:
        return  # not a daemon run
    accepted = counters["daemon.streams_accepted"]
    for key in (
        "daemon.streams_finalized",
        "daemon.streams_failed",
        "daemon.streams_shed",
        "daemon.busy_rejections",
        "daemon.restarts",
        "daemon.periods",
        "daemon.checkpoints",
    ):
        if key not in counters:
            fail(path, f"daemon run without {key}")
            return
    active = doc.get("gauges", {}).get("daemon.streams_active")
    if active is None:
        fail(path, "daemon run without a daemon.streams_active gauge")
        return
    settled = (
        counters["daemon.streams_finalized"]
        + counters["daemon.streams_failed"]
        + counters["daemon.streams_shed"]
    )
    if accepted != active.get("last") + settled:
        fail(
            path,
            f"daemon.streams_accepted {accepted} != active "
            f"{active.get('last')} + finalized/failed/shed {settled}",
        )
    if accepted > 0 and counters["daemon.periods"] == 0:
        fail(path, "daemon accepted streams but handled zero periods")
    for stream_gauge, total in (("periods", counters["daemon.periods"]),):
        per_stream = sum(
            g.get("last", 0)
            for name, g in doc.get("gauges", {}).items()
            if name.startswith("daemon.stream.")
            and name.endswith("." + stream_gauge)
        )
        if per_stream > total:
            fail(
                path,
                f"per-stream {stream_gauge} sum {per_stream} exceeds "
                f"daemon.periods {total}",
            )


def check_section_order(doc, path):
    order = list(doc.keys())
    expected = [
        "schema", "version", "counters", "gauges", "histograms", "spans",
        "elapsed_ns",
    ]
    if order != expected:
        fail(path, f"section order {order} != {expected}")


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__)
    metrics_path = Path(sys.argv[1])
    schema_path = (
        Path(sys.argv[2]) if len(sys.argv) == 3
        else Path(__file__).resolve().parent.parent / "metrics.schema.json"
    )
    schema = json.loads(schema_path.read_text())
    doc = json.loads(metrics_path.read_text(), object_pairs_hook=OrderedDict)
    check(doc, schema, schema, metrics_path.name)
    if isinstance(doc, dict):
        check_section_order(doc, metrics_path.name)
        check_engine_section(doc, metrics_path.name)
        check_shard_section(doc, metrics_path.name)
        check_daemon_section(doc, metrics_path.name)
    if errors:
        print("\n".join(errors), file=sys.stderr)
        sys.exit(1)
    counters = doc.get("counters", {})
    engine = (
        f", engine run over {counters['engine.periods']} periods"
        if "engine.periods" in counters
        else ""
    )
    print(
        f"{metrics_path.name}: valid rtgen-metrics v{doc.get('version')}; "
        f"{len(counters)} counters, {len(doc.get('spans', {}))} span names"
        f"{engine}"
    )


if __name__ == "__main__":
    main()
